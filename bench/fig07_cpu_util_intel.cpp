// Fig. 7: CPU utilization at various latencies (single stream, Intel host,
// kernel 6.5). "TX/RX Cores" aggregates the iperf3 core and the NIC IRQ
// cores, so values can exceed 100%.
//
// Paper shape: with defaults, the receiver CPU limits on the LAN and the
// sender CPU limits on the WAN; with zerocopy + optimal optmem + pacing,
// sender CPU drops dramatically and the receiver becomes the bottleneck,
// while throughput is identical across all RTTs.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main(int argc, char** argv) {
  print_header("Figure 7", "CPU utilization vs latency (single stream, Intel, kernel 6.5)",
               "default vs zerocopy+pacing 50G (optmem 3.25MB), 60 s x 10");

  const std::string perf_out = parse_bench_perf_out(argc, argv);
  const auto tb = harness::amlight(kern::KernelVersion::V6_5);
  Table table({"Config", "Path", "Throughput", "TX Cores", "RX Cores", "Bottleneck"});
  std::vector<obs::PerfReport> perf_log;

  for (const bool zcp : {false, true}) {
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      auto e = Experiment(tb).path(p);
      if (zcp) e.zerocopy().pacing(units::Rate::from_gbps(50)).optmem_max(units::Bytes(3405376));
      if (!perf_out.empty()) e.perf();
      const auto r = standard(std::move(e)).run();
      table.add_row({zcp ? "zc+pacing 50G" : "default", p, gbps(r.avg_gbps),
                     pct(r.snd_cpu_pct), pct(r.rcv_cpu_pct),
                     r.snd_cpu_pct > r.rcv_cpu_pct ? "sender" : "receiver"});
      perf_log.insert(perf_log.end(), r.perf_log.begin(), r.perf_log.end());
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Paper shape: default = receiver-bound on LAN, sender-bound on WAN;\n"
              "zc+pacing = sender CPU collapses, receiver becomes the bottleneck,\n"
              "throughput identical on all paths.\n");
  if (!perf_out.empty()) {
    if (!obs::write_perf_log(perf_out, perf_log)) {
      std::fprintf(stderr, "error: cannot write perf log to %s\n", perf_out.c_str());
      return 1;
    }
    std::printf("Perf log: %s (%zu cell reports, dtnsim-perf --replay reads it)\n",
                perf_out.c_str(), perf_log.size());
  }
  return 0;
}
