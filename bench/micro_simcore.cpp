// Micro-benchmarks of the simulator substrate itself (google-benchmark):
// event-queue throughput, RNG, fq pacing arithmetic, GSO/GRO geometry, the
// zerocopy socket, and end-to-end simulation rate (simulated seconds per
// wall second).
#include <benchmark/benchmark.h>

#include "dtnsim/core/dtnsim.hpp"

namespace {

using namespace dtnsim;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(static_cast<Nanos>((i * 2654435761u) % 1000000), [] {});
    }
    Nanos t = 0;
    while (auto fn = q.pop(&t)) benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_EngineSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) e.schedule(1000, tick);
    };
    e.schedule(1000, tick);
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_EngineSelfScheduling);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngLognormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.lognormal(1.0, 0.3));
}
BENCHMARK(BM_RngLognormal);

void BM_FqEnqueue(benchmark::State& state) {
  net::FqQdisc fq(100e9);
  fq.set_flow_rate(1, 10e9);
  Nanos now = 0;
  for (auto _ : state) {
    now = fq.enqueue(1, 9000.0, now);
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_FqEnqueue);

void BM_GsoCounts(benchmark::State& state) {
  const auto caps =
      kern::skb_caps(kern::kernel_profile(kern::KernelVersion::V6_8), true,
                     units::Bytes::kib(150));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern::gso_counts(units::Bytes(1e7), caps, false, units::Bytes(9000.0)));
  }
}
BENCHMARK(BM_GsoCounts);

void BM_ZcSocketRound(benchmark::State& state) {
  kern::ZcTxSocket sock(units::Bytes(1048576.0));
  for (auto _ : state) {
    const auto plan = sock.plan_send(units::Bytes(500e6), units::Bytes(65536.0));
    sock.on_acked(units::Bytes(500e6));
    benchmark::DoNotOptimize(plan.zc_bytes);
  }
}
BENCHMARK(BM_ZcSocketRound);

void BM_CostModelTx(benchmark::State& state) {
  const cpu::CostModel m(cpu::intel_xeon_6346(), cpu::CostModelOptions{});
  cpu::TxPathConfig cfg;
  cfg.zc_fraction = 0.6;
  cfg.cache_mult = 1.7;
  for (auto _ : state) benchmark::DoNotOptimize(m.tx_app_cyc_per_byte(cfg));
}
BENCHMARK(BM_CostModelTx);

// Whole-transfer simulation rate: one 60-second WAN transfer per iteration.
void BM_TransferWan60s(benchmark::State& state) {
  const auto tb = harness::esnet();
  flow::TransferConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.path_named("WAN 63ms");
  cfg.streams = static_cast<int>(state.range(0));
  cfg.duration = units::SimTime::from_seconds(60);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(flow::run_transfer(cfg).throughput_bps);
  }
  state.counters["sim_s_per_wall_s"] =
      benchmark::Counter(60.0 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TransferWan60s)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// LAN transfers tick at 200 us: ~300k rounds per simulated minute.
void BM_TransferLan60s(benchmark::State& state) {
  const auto tb = harness::esnet();
  flow::TransferConfig cfg;
  cfg.sender = tb.sender;
  cfg.receiver = tb.receiver;
  cfg.path = tb.lan();
  cfg.duration = units::SimTime::from_seconds(60);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(flow::run_transfer(cfg).throughput_bps);
  }
  state.counters["sim_s_per_wall_s"] =
      benchmark::Counter(60.0 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TransferLan60s)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
