// Fig. 6: Single-stream results, ESnet testbed (AMD host, kernel 6.8).
//
// AMD hosts are slower single-stream than Intel (no AVX-512, per-CCX L3),
// and the unpaced WAN default runs ~40% below LAN; zerocopy + 40G pacing
// recovers ~85% on the WAN, matching the LAN result.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Figure 6", "Single-stream throughput, ESnet testbed (AMD, kernel 6.8)",
               "1 stream, 60 s x 10, LAN + 63 ms WAN, CUBIC, MTU 9000");

  const auto tb = harness::esnet(kern::KernelVersion::V6_8);

  struct Config {
    const char* label;
    bool zc;
    double pace;
  };
  const Config configs[] = {
      {"default", false, 0},
      {"zerocopy", true, 0},
      {"zerocopy+pacing 40G", true, 40},
  };

  Table table({"Config", "LAN", "WAN 63ms"});
  double def_wan = 0, zcp_wan = 0, lan_best = 0;
  for (const auto& c : configs) {
    std::vector<std::string> row{c.label};
    for (const char* p : {"LAN", "WAN 63ms"}) {
      const auto r =
          standard(Experiment(tb).path(p).zerocopy(c.zc).pacing(units::Rate::from_gbps(c.pace))).run();
      row.push_back(gbps_pm(r));
      if (std::string(c.label) == "default" && std::string(p) == "WAN 63ms")
        def_wan = r.avg_gbps;
      if (c.pace > 0) (std::string(p) == "WAN 63ms" ? zcp_wan : lan_best) = r.avg_gbps;
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_ascii().c_str());

  std::printf("Shape checks vs paper:\n");
  std::printf("  zc+pacing WAN gain     : %.0f%%   (paper: ~85%%)\n",
              (zcp_wan / def_wan - 1.0) * 100.0);
  std::printf("  WAN matches LAN paced  : %.1f vs %.1f Gbps (paper: 'matching')\n",
              zcp_wan, lan_best);
  return 0;
}
