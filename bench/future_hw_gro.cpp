// Future work (§V-C): hardware GRO (SHAMPO) on ConnectX-7 with Linux 6.11.
//
// Paper's preliminary numbers on Intel hosts: ~33% single-stream gain with
// a 9000 B MTU and a dramatic ~160% gain with a 1500 B MTU (24 -> 62 Gbps),
// because header-data split removes the per-packet receive work that small
// MTUs multiply.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Future work: hardware GRO",
               "ConnectX-7 SHAMPO + header-data split (Intel host, kernel 6.11)",
               "single stream LAN, MTU {9000, 1500}, hw-gro {off, on}, 60 s x 10");

  // Intel hosts re-equipped with ConnectX-7 and the 6.11 kernel. The CX-7
  // drain constants in connectx7_200g() are calibrated for the AMD hosts;
  // on the Intel hosts the kernel path drains like the CX-5 numbers.
  auto tb = harness::amlight(kern::KernelVersion::V6_11);
  for (auto* h : {&tb.sender, &tb.receiver}) {
    h->nic = net::connectx7_200g();
    h->nic.line_rate_bps = 100e9;  // ports still connected at 100G
    h->nic.drain_smooth_bps = 52e9;
    h->nic.drain_burst_bps = 42e9;
  }

  // Zerocopy senders keep the sender off the critical path so the receive-
  // side effect is visible (the paper's tests are receiver-focused).
  Table table({"MTU", "HW GRO", "Throughput", "RX Cores"});
  double base9k = 0, hw9k = 0, base15 = 0, hw15 = 0;
  for (const double mtu : {9000.0, 1500.0}) {
    for (const bool hw : {false, true}) {
      const auto r = standard(Experiment(tb).mtu(units::Bytes(mtu)).zerocopy().hw_gro(hw)).run();
      table.add_row({strfmt("%.0f", mtu), hw ? "on" : "off", gbps_pm(r),
                     pct(r.rcv_cpu_pct)});
      if (mtu > 2000) (hw ? hw9k : base9k) = r.avg_gbps;
      else (hw ? hw15 : base15) = r.avg_gbps;
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape checks vs paper:\n");
  std::printf("  9000 B gain : %+.0f%%  (paper text: '33%% (62 vs 65 Gbps)' — the\n"
              "                quoted bars are themselves only +5%%; here the\n"
              "                relieved receiver runs into the ~64G path ceiling)\n",
              (hw9k / base9k - 1) * 100);
  std::printf("  1500 B gain : %+.0f%%  (paper: ~160%%, 24 -> 62 Gbps)\n",
              (hw15 / base15 - 1) * 100);
  return 0;
}
