// Fig. 5: Single-stream results, AmLight testbed (Intel host, kernel 6.8).
//
// Four configurations across LAN and the 25/54/104 ms WAN paths:
//   default iperf3, --zerocopy=z alone, zerocopy + --fq-rate 50G, and
//   BIG TCP (gso/gro_ipv4_max_size = 150 KB).
// Paper shape: zerocopy alone does not improve throughput; combined with
// 50G pacing it gains up to 35% on every WAN path; BIG TCP adds up to 16%.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Figure 5", "Single-stream throughput, AmLight (Intel, kernel 6.8)",
               "1 stream, 60 s x 10, LAN + 25/54/104 ms WAN, CUBIC, MTU 9000");

  const auto tb = harness::amlight(kern::KernelVersion::V6_8);
  const char* paths[] = {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"};

  struct Config {
    const char* label;
    bool zc;
    double pace;
    bool big_tcp;
  };
  const Config configs[] = {
      {"default", false, 0, false},
      {"zerocopy", true, 0, false},
      {"zerocopy+pacing 50G", true, 50, false},
      {"BIG TCP 150K", false, 0, true},
  };

  Table table({"Config", "LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"});
  double def_wan54 = 0, zcp_wan54 = 0, def_lan = 0, big_lan = 0;
  for (const auto& c : configs) {
    std::vector<std::string> row{c.label};
    for (const char* p : paths) {
      const auto r = standard(Experiment(tb)
                                  .path(p)
                                  .zerocopy(c.zc)
                                  .pacing(units::Rate::from_gbps(c.pace))
                                  .big_tcp(c.big_tcp))
                         .run();
      row.push_back(gbps_pm(r));
      if (std::string(c.label) == "default" && std::string(p) == "WAN 54ms")
        def_wan54 = r.avg_gbps;
      if (std::string(c.label) == "default" && std::string(p) == "LAN") def_lan = r.avg_gbps;
      if (c.pace > 0 && std::string(p) == "WAN 54ms") zcp_wan54 = r.avg_gbps;
      if (c.big_tcp && std::string(p) == "LAN") big_lan = r.avg_gbps;
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_ascii().c_str());

  std::printf("Shape checks vs paper:\n");
  std::printf("  default LAN            : %s   (paper: ~55 Gbps)\n", gbps(def_lan).c_str());
  std::printf("  zc+pacing WAN gain     : %.0f%%  (paper: up to 35%%)\n",
              (zcp_wan54 / def_wan54 - 1.0) * 100.0);
  std::printf("  BIG TCP LAN gain       : %.0f%%  (paper: up to 16%%)\n",
              (big_lan / def_lan - 1.0) * 100.0);
  return 0;
}
