// Ablation (§III-D): iommu=pt.
//
// Paper: "setting iommu=pt increased 8-stream throughput from 80 Gbps to
// 181 Gbps on the ESnet AMD hosts running the 5.15 kernel". Strict IOMMU
// mode pays a map/unmap + IOTLB penalty on every DMA and serializes on the
// mapping lock, which becomes an aggregate ceiling well below the NIC rate.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Ablation: IOMMU", "iommu=pt vs strict mapping (ESnet AMD, kernel 5.15)",
               "8 streams, zerocopy + pacing 25G, LAN, 60 s x 10");

  const auto tb = harness::esnet(kern::KernelVersion::V5_15);
  Table table({"Boot parameter", "Config", "Throughput", "stdev"});
  double strict_tput = 0, pt_tput = 0;
  for (const bool pt : {false, true}) {
    for (const bool zc : {false, true}) {
      const auto r = standard(Experiment(tb)
                                  .streams(8)
                                  .zerocopy(zc)
                                  .pacing(units::Rate::from_gbps(25))
                                  .iommu_passthrough(pt))
                         .run();
      table.add_row({pt ? "iommu=pt" : "strict (default)",
                     zc ? "zerocopy+pace 25G" : "pace 25G", gbps(r.avg_gbps),
                     strfmt("%.1f", r.stdev_gbps)});
      if (zc) (pt ? pt_tput : strict_tput) = r.avg_gbps;
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape check vs paper: strict ~%.0f Gbps -> pt ~%.0f Gbps\n"
              "(paper: 80 -> 181 Gbps; the pt ceiling here is the memory-bandwidth\n"
              "limit of the copy/zerocopy mix rather than the NIC).\n",
              strict_tput, pt_tput);
  return 0;
}
