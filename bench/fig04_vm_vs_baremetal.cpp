// Fig. 4: Bare metal vs VM on the AmLight testbed (Intel host, single
// stream, Debian 11 / kernel 5.10).
//
// The VM uses NIC PCI passthrough, pinned vCPUs on the NIC's NUMA node and
// iommu=pt on the hypervisor. Paper finding: all results are within one
// standard deviation of bare metal, with similar variability — which is
// what licenses running the rest of the study inside VMs.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Figure 4", "Bare metal vs tuned VM (Intel, Debian 11, kernel 5.10)",
               "single stream, default and zerocopy+pacing 50G, 60 s x 10");

  const auto bare = harness::amlight_baremetal(kern::KernelVersion::V5_10);
  const auto vm = harness::amlight_vm(kern::KernelVersion::V5_10);

  Table table({"Config", "Path", "Bare metal", "VM", "Delta"});
  double worst_delta = 0;
  for (const bool zcp : {false, true}) {
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      auto be = Experiment(bare).path(p);
      auto ve = Experiment(vm).path(p);
      if (zcp) {
        be.zerocopy().pacing(units::Rate::from_gbps(50));
        ve.zerocopy().pacing(units::Rate::from_gbps(50));
      }
      const auto br = standard(std::move(be)).run();
      const auto vr = standard(std::move(ve)).run();
      const double delta_pct = (vr.avg_gbps / br.avg_gbps - 1.0) * 100.0;
      worst_delta = std::max(worst_delta, std::abs(delta_pct));
      const bool within_sigma = std::abs(vr.avg_gbps - br.avg_gbps) <=
                                std::max(br.stdev_gbps, vr.stdev_gbps);
      table.add_row({zcp ? "zc+pacing 50G" : "default", p, gbps_pm(br), gbps_pm(vr),
                     strfmt("%+.1f%%%s", delta_pct, within_sigma ? " (within sigma)" : "")});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape check vs paper: tuned-VM penalty stays small (worst %.1f%%),\n"
              "within the run-to-run deviation — the paper's Fig. 4 conclusion.\n",
              worst_delta);
  return 0;
}
