// Table II: ESnet Testbed, WAN results, no flow control (kernel 5.15,
// 8 streams, 63 ms).
//
// Paper values:
//   unpaced      : 127 Gbps, 73K retr, min 119, max 137, stdev 7.2
//   25 G/stream  : 136 Gbps, 22K retr, min 104, max 157, stdev 15.8
//   20 G/stream  : 131 Gbps,  8K retr, min 118, max 142, stdev 8.9
//   15 G/stream  : 115 Gbps,  4K retr, min 108, max 119, stdev 4.7
// Key paper observation: flows interfere whenever the total attempted
// bandwidth exceeds ~120 Gbps on this path.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Table II", "ESnet WAN (63 ms), 8 flows, no flow control (kernel 5.15)",
               "8 streams, pacing {unpaced, 25, 20, 15} G/flow, 60 s x 10");

  const auto tb = harness::esnet(kern::KernelVersion::V5_15);
  const char* paper[] = {"127 / 73K / 119-137 / 7.2", "136 / 22K / 104-157 / 15.8",
                         "131 / 8K / 118-142 / 8.9", "115 / 4K / 108-119 / 4.7"};

  Table table({"Test Config", "Ave Tput", "Retr", "Min", "Max", "stdev",
               "paper (tput/retr/min-max/sd)"});
  int i = 0;
  for (const double pace : {0.0, 25.0, 20.0, 15.0}) {
    const auto r =
        standard(Experiment(tb).path("WAN 63ms").streams(8).pacing(units::Rate::from_gbps(pace))).run();
    table.add_row({pace > 0 ? strfmt("%.0f Gbps / stream", pace) : "unpaced",
                   gbps(r.avg_gbps), count(r.avg_retransmits), strfmt("%.0f", r.min_gbps),
                   strfmt("%.0f", r.max_gbps), strfmt("%.1f", r.stdev_gbps), paper[i++]});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape: unpaced retransmits dwarf every paced row; moderate pacing\n"
              "(25G) beats unpaced; at 15 G/flow (120G attempted) losses nearly\n"
              "vanish — the paper's 120 Gbps interference threshold.\n");
  return 0;
}
