// Fluid-vs-packet divergence: the bottleneck-attribution report.
//
// The fluid TransferSimulation and the SKB-granular packet engine model the
// same transfer at different scales. This bench runs both engines over the
// same scenarios — paced vs unpaced on LAN and WAN geometries — through one
// shared obs::Telemetry per scenario, then prints flow::divergence_report
// and *fails* when a scenario leaves its calibrated band.
//
// The bands encode which fluid abstractions are trusted at which scale:
//   - paced runs must agree tightly on throughput (pacing is the one knob
//     both engines implement mechanically),
//   - window-limited WAN runs agree once slow-start amortizes,
//   - unpaced LAN runs are *expected* to diverge (the fluid model books
//     per-byte CPU cost against a round, the packet engine serializes
//     per-skb prep), so their band is wide — but still bounded: a blowup
//     beyond it means one of the engines regressed.
// Exits non-zero on any violation, loudly naming the metric and the band.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dtnsim/flow/divergence.hpp"
#include "dtnsim/flow/packet_sim.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

namespace {

struct Scenario {
  std::string name;
  harness::Testbed tb;
  net::PathSpec path;
  double pacing_bps = 0.0;
  double window_bytes = 64e6;     // packet engine's fixed window
  double wmem_max = 0.0;          // fluid: override tcp_wmem_max when > 0
  double fluid_seconds = 10.0;
  double packet_seconds = 0.05;
  // Calibrated ceilings for rel_diff per metric (1.0 = 100%).
  double band_bps = 0.15;
  double band_agg = 0.35;
};

flow::DivergenceReport run_scenario(const Scenario& sc) {
  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.probe_interval = units::seconds(1);
  obs::Telemetry tel(tcfg);

  // Fluid pass: one stream, long horizon so slow-start amortizes.
  flow::TransferConfig fcfg;
  fcfg.sender = sc.tb.sender;
  fcfg.receiver = sc.tb.receiver;
  fcfg.path = sc.path;
  fcfg.streams = 1;
  fcfg.flow.fq_rate_bps = sc.pacing_bps;
  fcfg.duration = units::SimTime::from_seconds(sc.fluid_seconds);
  fcfg.telemetry = &tel;
  if (sc.wmem_max > 0) {
    fcfg.sender.tuning.sysctl.wmem_max = sc.wmem_max;
    fcfg.sender.tuning.sysctl.tcp_wmem_max = sc.wmem_max;
  }
  flow::run_transfer(fcfg);

  // Packet pass: same hosts/path/pacing, SKB granularity, short horizon.
  flow::PacketSimConfig pcfg;
  pcfg.sender = sc.tb.sender;
  pcfg.receiver = sc.tb.receiver;
  pcfg.path = sc.path;
  pcfg.pacing_bps = sc.pacing_bps;
  pcfg.window_bytes = sc.window_bytes;
  pcfg.duration = units::SimTime::from_seconds(sc.packet_seconds);
  pcfg.telemetry = &tel;
  flow::run_packet_sim(pcfg);

  return flow::divergence_report(sc.name, tel.registry(),
                                 units::SimTime::from_seconds(sc.fluid_seconds),
                                 units::SimTime::from_seconds(sc.packet_seconds));
}

}  // namespace

int main() {
  print_header("Divergence", "fluid vs packet engine, shared telemetry",
               "paced/unpaced x LAN/WAN; calibrated rel-diff bands");

  const auto lan_tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);
  const auto wan_tb = harness::amlight_baremetal(kern::KernelVersion::V6_8);

  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "lan paced 10G";
    s.tb = lan_tb;
    s.path = lan_tb.lan();
    s.pacing_bps = units::gbps(10);
    scenarios.push_back(s);
  }
  {
    // Unpaced LAN: the engines bottleneck differently by design (fluid
    // books CPU per round; packet serializes per-skb prep and overruns the
    // ring), so the band is wider — measured ~14% plus ring-drop asymmetry.
    Scenario s;
    s.name = "lan unpaced";
    s.tb = lan_tb;
    s.path = lan_tb.lan();
    s.band_bps = 0.35;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "wan paced 5G";
    s.tb = wan_tb;
    s.path = harness::amlight_wan(25);
    s.pacing_bps = units::gbps(5);
    s.fluid_seconds = 20.0;  // slow-start is a bigger fraction on WAN
    s.packet_seconds = 0.5;
    s.band_bps = 0.25;
    scenarios.push_back(s);
  }
  {
    // Window-limited WAN: 4 MB of usable send window over 25 ms ~ 1.28 Gbps
    // in both engines (fluid usable window = tcp_wmem_max / 2).
    Scenario s;
    s.name = "wan window-limited";
    s.tb = wan_tb;
    s.path = harness::amlight_wan(25);
    s.window_bytes = 4e6;
    s.wmem_max = 8e6;
    s.fluid_seconds = 20.0;
    s.packet_seconds = 0.5;
    s.band_bps = 0.30;
    scenarios.push_back(s);
  }

  int violations = 0;
  for (const auto& sc : scenarios) {
    const auto rep = run_scenario(sc);
    std::printf("%s", rep.to_string().c_str());

    const auto check = [&](const char* metric, double band) {
      const auto* e = rep.find(metric);
      if (!e) return;
      if (e->rel_diff() > band) {
        std::printf("  ** VIOLATION: %s rel diff %.1f%% exceeds band %.0f%%\n",
                    metric, e->rel_diff() * 100.0, band * 100.0);
        ++violations;
      }
    };
    check("achieved_bps", sc.band_bps);
    check("aggregate_bytes", sc.band_agg);
    std::printf("\n");
  }

  if (violations > 0) {
    std::printf("%d divergence violation(s): a fluid abstraction broke at\n"
                "packet scale (or an engine regressed). See bands above.\n",
                violations);
    return 1;
  }
  std::printf("All scenarios inside their calibrated bands.\n");
  return 0;
}
