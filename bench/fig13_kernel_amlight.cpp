// Fig. 13: Kernel version results on the AmLight testbed (Intel host,
// single stream).
//
// Paper: LAN gains are similar but less dramatic than AMD (6.8 is ~27%
// faster than 5.15); single-stream WAN results are identical across
// kernels because all are pinned at the 50 Gbps pacing rate required to
// protect the receiving host. (The WAN runs here use zerocopy + 50G pacing
// with --skip-rx-copy, the sender-focused configuration; see EXPERIMENTS.md.)
//
// Ported to the sweep campaign engine. The figure is not one cross-product
// — LAN runs default settings while WAN runs the tuned sender config — so
// it composes two grids, which is exactly how non-rectangular paper figures
// map onto the engine.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main(int argc, char** argv) {
  print_header("Figure 13", "Kernel versions 5.15 / 6.5 / 6.8 (AmLight Intel, single stream)",
               "LAN: default; WAN: zerocopy + pacing 50G + skip-rx-copy, 60 s x 10");

  const std::vector<kern::KernelVersion> kernels = {
      kern::KernelVersion::V5_15, kern::KernelVersion::V6_5, kern::KernelVersion::V6_8};

  sweep::GridSpec lan_grid;
  lan_grid.name = "fig13-lan";
  lan_grid.testbed = "amlight";
  lan_grid.kernels = kernels;
  lan_grid.paths = {"LAN"};
  lan_grid.duration_sec = 60;
  lan_grid.repeats = 10;

  sweep::GridSpec wan_grid = lan_grid;
  wan_grid.name = "fig13-wan";
  wan_grid.paths = {"WAN 25ms", "WAN 104ms"};
  wan_grid.zerocopy = {true};
  wan_grid.skip_rx_copy = true;
  wan_grid.pacing_gbps = {50.0};
  wan_grid.optmem_max = {3405376.0};

  const sweep::CampaignOptions run = parse_bench_campaign_flags(argc, argv);
  const auto lan_report = sweep::run_campaign(lan_grid, run);
  const auto wan_report = sweep::run_campaign(wan_grid, run);

  Table table({"Kernel", "LAN (default)", "WAN 25ms (zc+pace50)", "WAN 104ms (zc+pace50)"});
  double lan515 = 0, lan68 = 0, wan_min = 1e9, wan_max = 0;
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const auto& lan = lan_report.cells[k].result;
    std::vector<std::string> row{kern::kernel_version_name(kernels[k]), gbps_pm(lan)};
    for (std::size_t p = 0; p < wan_grid.paths.size(); ++p) {
      const auto& wan = wan_report.cells[k * wan_grid.paths.size() + p].result;
      row.push_back(gbps_pm(wan));
      wan_min = std::min(wan_min, wan.avg_gbps);
      wan_max = std::max(wan_max, wan.avg_gbps);
    }
    table.add_row(std::move(row));
    if (kernels[k] == kern::KernelVersion::V5_15) lan515 = lan.avg_gbps;
    if (kernels[k] == kern::KernelVersion::V6_8) lan68 = lan.avg_gbps;
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("%s\n%s\n", campaign_summary(lan_report).c_str(),
              campaign_summary(wan_report).c_str());
  std::printf("Shape checks vs paper:\n");
  std::printf("  LAN 6.8 over 5.15     : %+.0f%%  (paper: ~27%%)\n",
              (lan68 / lan515 - 1) * 100);
  std::printf("  WAN spread over kernels: %.1f Gbps  (paper: 'the same for all kernels')\n",
              wan_max - wan_min);
  return 0;
}
