// Fig. 13: Kernel version results on the AmLight testbed (Intel host,
// single stream).
//
// Paper: LAN gains are similar but less dramatic than AMD (6.8 is ~27%
// faster than 5.15); single-stream WAN results are identical across
// kernels because all are pinned at the 50 Gbps pacing rate required to
// protect the receiving host. (The WAN runs here use zerocopy + 50G pacing
// with --skip-rx-copy, the sender-focused configuration; see EXPERIMENTS.md.)
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Figure 13", "Kernel versions 5.15 / 6.5 / 6.8 (AmLight Intel, single stream)",
               "LAN: default; WAN: zerocopy + pacing 50G + skip-rx-copy, 60 s x 10");

  Table table({"Kernel", "LAN (default)", "WAN 25ms (zc+pace50)", "WAN 104ms (zc+pace50)"});
  double lan515 = 0, lan68 = 0, wan_min = 1e9, wan_max = 0;
  for (const auto k :
       {kern::KernelVersion::V5_15, kern::KernelVersion::V6_5, kern::KernelVersion::V6_8}) {
    const auto tb = harness::amlight(k);
    const auto lan = standard(Experiment(tb)).run();
    std::vector<std::string> row{kern::kernel_version_name(k), gbps_pm(lan)};
    for (const char* p : {"WAN 25ms", "WAN 104ms"}) {
      const auto wan = standard(Experiment(tb)
                                    .path(p)
                                    .zerocopy()
                                    .skip_rx_copy()
                                    .pacing_gbps(50)
                                    .optmem_max(3405376))
                           .run();
      row.push_back(gbps_pm(wan));
      wan_min = std::min(wan_min, wan.avg_gbps);
      wan_max = std::max(wan_max, wan.avg_gbps);
    }
    table.add_row(std::move(row));
    if (k == kern::KernelVersion::V5_15) lan515 = lan.avg_gbps;
    if (k == kern::KernelVersion::V6_8) lan68 = lan.avg_gbps;
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape checks vs paper:\n");
  std::printf("  LAN 6.8 over 5.15     : %+.0f%%  (paper: ~27%%)\n",
              (lan68 / lan515 - 1) * 100);
  std::printf("  WAN spread over kernels: %.1f Gbps  (paper: 'the same for all kernels')\n",
              wan_max - wan_min);
  return 0;
}
