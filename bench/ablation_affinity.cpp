// Ablation (§III-A): core selection / irqbalance.
//
// Paper: "The performance of a single 100G flow can vary from 20 Gbps to
// 55 Gbps on the same hardware, depending on which cores and which NUMA
// node get assigned" — fixed by disabling irqbalance and pinning IRQs to
// cores 0-7 and the tool to cores 8-15 on the NIC's NUMA node.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Ablation: core affinity", "irqbalance/scheduler placement vs pinning",
               "single stream, AmLight Intel LAN, kernel 6.8, 60 s x 24 repeats");

  Table table({"Placement policy", "Mean", "Min", "Max", "stdev"});
  for (const bool balanced : {true, false}) {
    const auto r = Experiment(harness::amlight())
                       .irqbalance(balanced)
                       .duration(units::SimTime::from_seconds(60))
                       .repeats(24)
                       .run();
    table.add_row({balanced ? "irqbalance + floating scheduler" : "pinned (0-7 irq, 8-15 app)",
                   gbps(r.avg_gbps), gbps(r.min_gbps), gbps(r.max_gbps),
                   strfmt("%.1f", r.stdev_gbps)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape check vs paper: random placement spans roughly 20-55 Gbps\n"
              "run to run; the pinned recipe is tight around ~55 Gbps.\n");
  return 0;
}
