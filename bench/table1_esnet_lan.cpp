// Table I: ESnet Testbed, LAN results, no flow control (kernel 5.15,
// default iperf3 settings apart from --fq-rate, 8 streams).
//
// Paper values:
//   unpaced      : 166 Gbps, 242 retr, min 154, max 177, stdev 8.1
//   25 G/stream  : 166 Gbps,  70 retr, min 146, max 172, stdev 9.1
//   20 G/stream  : 147 Gbps,  83 retr, min 115, max 153, stdev 12.3
//   15 G/stream  : 118 Gbps (printed as "80", an apparent typo given
//                  min 118 / max 119 / stdev 0.1), 118 retr
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Table I", "ESnet LAN, 8 flows, no flow control (kernel 5.15)",
               "8 streams, pacing {unpaced, 25, 20, 15} G/flow, 60 s x 10");

  const auto tb = harness::esnet(kern::KernelVersion::V5_15);
  const char* paper[] = {"166 / 242 / 154-177 / 8.1", "166 / 70 / 146-172 / 9.1",
                         "147 / 83 / 115-153 / 12.3", "118* / 118 / 118-119 / 0.1"};

  Table table({"Test Config", "Ave Tput", "Retr", "Min", "Max", "stdev",
               "paper (tput/retr/min-max/sd)"});
  int i = 0;
  for (const double pace : {0.0, 25.0, 20.0, 15.0}) {
    const auto r = standard(Experiment(tb).streams(8).pacing(units::Rate::from_gbps(pace))).run();
    table.add_row({pace > 0 ? strfmt("%.0f Gbps / stream", pace) : "unpaced",
                   gbps(r.avg_gbps), count(r.avg_retransmits), strfmt("%.0f", r.min_gbps),
                   strfmt("%.0f", r.max_gbps), strfmt("%.1f", r.stdev_gbps), paper[i++]});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("(*) The paper prints 'Ave 80' for the 15 G/stream row with\n"
              "min 118 / max 119 / stdev 0.1 — we take 118 as the intended value.\n");
  return 0;
}
