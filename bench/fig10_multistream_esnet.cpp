// Fig. 10: 8 parallel flows on the ESnet testbed (AMD host, kernel 6.8),
// zerocopy with pacing at various rates, against the "Max Tput" reference
// (min of the NIC rate and streams x pace).
//
// Paper shape: zerocopy+pacing delivers nearly the maximum possible on both
// LAN and WAN (200 down to 120 Gbps depending on pacing), with the smallest
// stddev at 15 Gbps/stream.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Figure 10", "8 flows, zerocopy + pacing sweep (ESnet AMD, kernel 6.8)",
               "8 streams, zerocopy, pacing {unpaced, 25, 20, 15} G/flow, 60 s x 10");

  const auto tb = harness::esnet(kern::KernelVersion::V6_8);
  Table table({"Pacing", "Path", "Max Tput", "Measured", "stdev", "Retr"});
  for (const double pace : {0.0, 25.0, 20.0, 15.0}) {
    for (const char* p : {"LAN", "WAN 63ms"}) {
      const double max_tput = pace > 0 ? std::min(8 * pace, 200.0) : 200.0;
      const auto r =
          standard(Experiment(tb).path(p).streams(8).zerocopy().pacing(units::Rate::from_gbps(pace))).run();
      table.add_row({pace > 0 ? strfmt("%.0f G/flow", pace) : "unpaced", p,
                     gbps(max_tput), gbps(r.avg_gbps), strfmt("%.1f", r.stdev_gbps),
                     count(r.avg_retransmits)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Paper shape: measured tracks Max Tput closely on LAN and WAN;\n"
              "stddev shrinks as pacing deepens (smallest at 15 G/flow).\n");
  return 0;
}
