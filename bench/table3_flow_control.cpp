// Table III: ESnet production DTNs, IEEE 802.3x flow control available,
// RTT 63 ms, 8 streams (kernel 5.15).
//
// Paper values:
//   unpaced      : 98 Gbps, 29K retr, per-flow range  9-16 Gbps
//   15 G/stream  : 98 Gbps, 27K retr, per-flow range 10-13 Gbps
//   12 G/stream  : 93 Gbps,  8K retr, per-flow range 11-12 Gbps
//   10 G/stream  : 79 Gbps,  1K retr, per-flow range 10-10 Gbps
// With flow control, pacing reduces retransmits and evens the flows out but
// does not change average throughput — until it undershoots the path.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Table III", "ESnet production DTNs, with 802.3x flow control (63 ms)",
               "8 streams, pacing {unpaced, 15, 12, 10} G/flow, 60 s x 10");

  const auto tb = harness::esnet_production(kern::KernelVersion::V5_15);
  const char* paper[] = {"98 / 29K / 9-16", "98 / 27K / 10-13", "93 / 8K / 11-12",
                         "79 / 1K / 10-10"};

  Table table({"Test Config", "Ave Tput", "Retr", "Range", "paper (tput/retr/range)"});
  int i = 0;
  for (const double pace : {0.0, 15.0, 12.0, 10.0}) {
    const auto r = standard(Experiment(tb)
                                .path("production 63ms")
                                .streams(8)
                                .pacing_gbps(pace))
                       .run();
    table.add_row({pace > 0 ? strfmt("%.0f Gbps / stream", pace) : "unpaced",
                   gbps(r.avg_gbps), count(r.avg_retransmits),
                   strfmt("%.0f-%.0f Gbps", r.flow_min_gbps, r.flow_max_gbps),
                   paper[i++]});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape: throughput flat at the path ceiling until pacing undershoots\n"
              "(8 x 10 = 80 < path); retransmits fall and the per-flow range\n"
              "narrows monotonically with deeper pacing (exactly 10-10 at 10G).\n");
  return 0;
}
