// Table III: ESnet production DTNs, IEEE 802.3x flow control available,
// RTT 63 ms, 8 streams (kernel 5.15).
//
// Paper values:
//   unpaced      : 98 Gbps, 29K retr, per-flow range  9-16 Gbps
//   15 G/stream  : 98 Gbps, 27K retr, per-flow range 10-13 Gbps
//   12 G/stream  : 93 Gbps,  8K retr, per-flow range 11-12 Gbps
//   10 G/stream  : 79 Gbps,  1K retr, per-flow range 10-10 Gbps
// With flow control, pacing reduces retransmits and evens the flows out but
// does not change average throughput — until it undershoots the path.
//
// Ported to the sweep campaign engine: the pacing ladder is one GridSpec
// axis, cells run on the worker pool (--jobs N), and the grid's telemetry
// knob arms the interval probe for every cell (telemetry-enabled cells are
// never cached, so --cache only matters for cache-dir plumbing smokes).
// Cells come back in grid order: cells[i] is the i-th pacing value.
//
// This bench doubles as the per-flow-telemetry demo: the per-flow skew
// gauges (flow.per_flow_range_bps as a time series) show pacing collapsing
// the spread *during* the run, not just in the end-of-run Range column.
// Flags (on top of the shared --jobs/--cache):
//   --quick              1 repeat x 5 s (CI smoke; shape only)
//   --probe-interval S   sampling cadence in seconds (default 1)
//   --metrics-out F      merged per-repeat interval series -> CSV
//   --ss-out F           end-of-run dtnsim-ss snapshot per pacing config
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main(int argc, char** argv) {
  bool quick = false;
  double probe_interval_sec = 1.0;
  std::string metrics_out;
  std::string ss_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--probe-interval") == 0 && i + 1 < argc) {
      probe_interval_sec = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--ss-out") == 0 && i + 1 < argc) {
      ss_out = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 || std::strcmp(argv[i], "--cache") == 0) {
      ++i;  // consumed by parse_bench_campaign_flags
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const std::vector<double> pacing = {0.0, 15.0, 12.0, 10.0};
  sweep::GridSpec grid;
  grid.name = "table3";
  grid.testbed = "production";
  grid.kernels = {kern::KernelVersion::V5_15};
  grid.paths = {"production 63ms"};
  grid.streams = {8};
  grid.pacing_gbps = pacing;
  grid.duration_sec = quick ? 5.0 : 60.0;
  grid.repeats = quick ? 1 : 10;
  grid.telemetry.enabled = true;
  grid.telemetry.probe_interval = units::seconds(probe_interval_sec);
  if (!ss_out.empty()) grid.telemetry.ss_enabled = true;

  print_header("Table III", "ESnet production DTNs, with 802.3x flow control (63 ms)",
               strfmt("8 streams, pacing {unpaced, 15, 12, 10} G/flow, %.0f s x %d",
                      grid.duration_sec, grid.repeats));

  sweep::CampaignOptions run = parse_bench_campaign_flags(argc, argv);
  const auto report = sweep::run_campaign(grid, run);

  const char* paper[] = {"98 / 29K / 9-16", "98 / 27K / 10-13", "93 / 8K / 11-12",
                         "79 / 1K / 10-10"};

  Table table({"Test Config", "Ave Tput", "Retr", "Range", "Skew p50", "paper (tput/retr/range)"});
  std::vector<obs::LabeledSeries> labeled;
  std::vector<double> skew_p50;  // median in-run per-flow spread, per config
  for (std::size_t i = 0; i < pacing.size(); ++i) {
    const double pace = pacing[i];
    const std::string label = pace > 0 ? strfmt("%.0fG/stream", pace) : "unpaced";
    const auto& r = report.cells[i].result;

    // In-run skew: median of the flow.per_flow_range_bps probe series from
    // repeat 0 — pacing should push this down monotonically, live.
    double p50 = 0.0;
    if (!r.repeat_series.empty()) {
      auto range = r.repeat_series[0].column("flow.per_flow_range_bps");
      // Drop leading zeros (slow-start samples before the first full round).
      std::vector<double> nonzero;
      for (double v : range)
        if (v > 0) nonzero.push_back(v);
      if (!nonzero.empty()) {
        std::sort(nonzero.begin(), nonzero.end());
        p50 = nonzero[nonzero.size() / 2];
      }
    }
    skew_p50.push_back(p50);

    for (std::size_t rep = 0; rep < r.repeat_series.size(); ++rep)
      labeled.push_back({label, static_cast<int>(rep), &report.cells[i].result.repeat_series[rep]});

    table.add_row({pace > 0 ? strfmt("%.0f Gbps / stream", pace) : "unpaced",
                   gbps(r.avg_gbps), count(r.avg_retransmits),
                   strfmt("%.0f-%.0f Gbps", r.flow_min_gbps, r.flow_max_gbps),
                   strfmt("%.1f Gbps", units::to_gbps(p50)), paper[i]});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("%s\n", campaign_summary(report).c_str());

  if (!metrics_out.empty()) {
    if (!obs::write_merged_series_csv(metrics_out, labeled)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("interval metrics (incl. per-flow tcp.cwnd_bytes{flow=N} tracks): %s\n\n",
                metrics_out.c_str());
  }

  if (!ss_out.empty()) {
    std::vector<obs::SsReport> ss_log;
    for (std::size_t i = 0; i < pacing.size(); ++i) {
      for (auto rep : report.cells[i].result.ss_log) {
        rep.label = pacing[i] > 0 ? strfmt("%.0fG/stream", pacing[i]) : "unpaced";
        ss_log.push_back(std::move(rep));
      }
    }
    if (!obs::write_ss_log(ss_out, ss_log)) {
      std::fprintf(stderr, "cannot write %s\n", ss_out.c_str());
      return 1;
    }
    std::printf("dtnsim-ss snapshots (8 sockets per config): %s\n\n", ss_out.c_str());
  }

  // Verdict: the paper's ordering claim — deeper pacing never widens the
  // in-run per-flow spread (checked on medians to ignore slow-start noise).
  bool monotone = true;
  for (std::size_t k = 1; k < skew_p50.size(); ++k) {
    if (skew_p50[k] > skew_p50[k - 1] * 1.10) monotone = false;  // 10% slack
  }
  std::printf("Shape: throughput flat at the path ceiling until pacing undershoots\n"
              "(8 x 10 = 80 < path); retransmits fall and the per-flow range\n"
              "narrows monotonically with deeper pacing (exactly 10-10 at 10G).\n"
              "In-run skew ordering (p50 of flow.per_flow_range_bps): %s\n",
              monotone ? "OK, narrows with pacing" : "VIOLATED");
  return monotone ? 0 : 1;
}
