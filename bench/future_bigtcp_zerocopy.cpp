// Future work (§V-C): BIG TCP + MSG_ZEROCOPY on a custom kernel with
// MAX_SKB_FRAGS=45.
//
// On stock kernels the two features fight over SKB frags: zerocopy pins one
// 4 KiB page per frag, so MAX_SKB_FRAGS=17 caps zerocopy super-packets near
// 64 KiB regardless of gso_max. Rebuilding with 45 frags lifts that to
// ~180 KiB, letting zerocopy enjoy BIG TCP's per-packet amortization. The
// paper saw up to 65% in preliminary (and admittedly inconsistent) tests.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Future work: BIG TCP + zerocopy",
               "stock MAX_SKB_FRAGS=17 vs custom 45 (ESnet AMD, kernel 6.8)",
               "single stream LAN, zerocopy, --skip-rx-copy (sender-limited), 60 s x 10");

  auto stock = harness::esnet(kern::KernelVersion::V6_8);
  auto custom = stock;
  custom.sender.kernel = kern::custom_kernel_with_frags(custom.sender.kernel, 45);
  custom.receiver.kernel = kern::custom_kernel_with_frags(custom.receiver.kernel, 45);

  // Show the SKB geometry first — the mechanism the whole experiment hinges on.
  const auto caps17 = kern::skb_caps(stock.sender.kernel, true, units::Bytes(180.0 * 1024));
  const auto caps45 = kern::skb_caps(custom.sender.kernel, true, units::Bytes(180.0 * 1024));
  std::printf("Effective zerocopy super-packet: stock %s, frags45 %s\n\n",
              units::format_bytes(kern::effective_gso_bytes(caps17, true, units::Bytes(9000))).c_str(),
              units::format_bytes(kern::effective_gso_bytes(caps45, true, units::Bytes(9000))).c_str());

  Table table({"Kernel", "BIG TCP", "Throughput", "TX Cores"});
  double base = 0, best = 0, base_cpu = 0, best_cpu = 0;
  struct Row {
    const harness::Testbed* tb;
    bool big;
    const char* label;
  };
  const Row rows[] = {{&stock, false, "6.8 stock"},
                      {&stock, true, "6.8 stock"},
                      {&custom, true, "6.8 MAX_SKB_FRAGS=45"}};
  for (const auto& row : rows) {
    const auto r = standard(Experiment(*row.tb)
                                .zerocopy()
                                .skip_rx_copy()
                                .big_tcp(row.big, units::Bytes(180.0 * 1024)))
                       .run();
    table.add_row({row.label, row.big ? "180K" : "off", gbps_pm(r), pct(r.snd_cpu_pct)});
    if (!row.big) {
      base = r.avg_gbps;
      base_cpu = r.snd_cpu_pct;
    }
    if (row.tb == &custom) {
      best = r.avg_gbps;
      best_cpu = r.snd_cpu_pct;
    }
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape check vs paper: stacking the features on the custom kernel\n"
              "gains %+.0f%% throughput / %+.0f%% sender CPU (paper: up to +65%%,\n"
              "preliminary and inconsistent; stock-kernel BIG TCP+zc is a no-op\n"
              "because the frag limit clamps the zerocopy super-packet).\n",
              (best / base - 1) * 100, (best_cpu / base_cpu - 1) * 100);
  return 0;
}
