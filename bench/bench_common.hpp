// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench regenerates one table or figure from the paper: same rows,
// same series, printed alongside the paper's reference values so the shape
// comparison is immediate. All benches run 60 s x 10 repeats unless a
// cheaper grid is noted (the harness is deterministic, so repeats only add
// the paper's run-to-run spread).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dtnsim/core/dtnsim.hpp"

namespace dtnsim::bench {

inline void print_header(const std::string& id, const std::string& what,
                         const std::string& setup) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("Setup: %s\n", setup.c_str());
  std::printf("================================================================\n\n");
}

inline std::string gbps(double v) { return strfmt("%.1f Gbps", v); }
inline std::string gbps_pm(const harness::TestResult& r) {
  return strfmt("%.1f ± %.1f", r.avg_gbps, r.stdev_gbps);
}
inline std::string pct(double v) { return strfmt("%.0f%%", v); }
inline std::string count(double v) {
  if (v >= 1000) return strfmt("%.0fK", v / 1000.0);
  return strfmt("%.0f", v);
}

// Standard experiment depth. The paper runs 60 s and >= 10 repeats; the
// bench default matches, and heavy multi-stream LAN grids may pass lighter
// values explicitly (noted in their output).
inline Experiment standard(Experiment e) { return e.duration(units::SimTime::from_seconds(60)).repeats(10); }

// Shared flag parsing for campaign-engine benches: --jobs N (0 = hardware
// threads) and --cache DIR. Unknown flags are ignored so figure-specific
// benches can layer their own.
inline sweep::CampaignOptions parse_bench_campaign_flags(int argc, char** argv) {
  sweep::CampaignOptions run;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--jobs") run.jobs = std::atoi(argv[++i]);
    else if (flag == "--cache") run.cache_dir = argv[++i];
  }
  return run;
}

// Shared flag parsing for attribution-enabled benches: --perf-out FILE
// turns on per-stage cycle profiling for every cell and merges the labeled
// logs into one dtnsim-perf replay file. Returns "" when the flag is absent
// (profiling stays off and the bench output is bit-identical).
inline std::string parse_bench_perf_out(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--perf-out") return argv[i + 1];
  }
  return "";
}

inline std::string campaign_summary(const sweep::CampaignReport& r) {
  return strfmt("[%s: %zu cells, %zu simulated, %zu cached, jobs=%d, %.1fs wall]",
                r.name.c_str(), r.total, r.simulated, r.cached, r.jobs, r.wall_sec);
}

}  // namespace dtnsim::bench
