// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench regenerates one table or figure from the paper: same rows,
// same series, printed alongside the paper's reference values so the shape
// comparison is immediate. All benches run 60 s x 10 repeats unless a
// cheaper grid is noted (the harness is deterministic, so repeats only add
// the paper's run-to-run spread).
#pragma once

#include <cstdio>
#include <string>

#include "dtnsim/core/dtnsim.hpp"

namespace dtnsim::bench {

inline void print_header(const std::string& id, const std::string& what,
                         const std::string& setup) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("Setup: %s\n", setup.c_str());
  std::printf("================================================================\n\n");
}

inline std::string gbps(double v) { return strfmt("%.1f Gbps", v); }
inline std::string gbps_pm(const harness::TestResult& r) {
  return strfmt("%.1f ± %.1f", r.avg_gbps, r.stdev_gbps);
}
inline std::string pct(double v) { return strfmt("%.0f%%", v); }
inline std::string count(double v) {
  if (v >= 1000) return strfmt("%.0fK", v / 1000.0);
  return strfmt("%.0f", v);
}

// Standard experiment depth. The paper runs 60 s and >= 10 repeats; the
// bench default matches, and heavy multi-stream LAN grids may pass lighter
// values explicitly (noted in their output).
inline Experiment standard(Experiment e) { return e.duration_sec(60).repeats(10); }

}  // namespace dtnsim::bench
