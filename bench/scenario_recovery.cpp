// Scenario recovery: transient-fault response of the tuning the paper ships.
//
// The figures freeze conditions at t=0; production paths do not. This bench
// replays two transients the paper's prose describes on live runs and checks
// the *ordering* the tuning advice predicts, from the per-second probe
// series (dip depth during the episode, time back to 90% of the pre-episode
// baseline afterwards):
//
//   A. loss burst (2% for 5 s, WAN 63 ms): BBR is rate-based and treats
//      random loss as noise, CUBIC halves on every episode — so BBR must
//      retain more throughput during the burst and be back at baseline at
//      least as fast.
//   B. background surge (185 Gbps for 10 s, the AmLight production story
//      scaled up so the residual capacity drops below the send rate):
//      a paced sender shares the shrunken residual capacity smoothly; an
//      unpaced one overruns the queue and takes a loss episode on top of
//      the bandwidth cut — so the paced flow must retain at least as much
//      of its baseline and accumulate no more retransmits.
//
// Bands are calibrated against the current engines (values in-line below);
// exits non-zero naming metric and band on any violation, same contract as
// packet_divergence.
#include <cstdio>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "dtnsim/report/analysis.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

namespace {

// What one run's probe series says about an episode in [start, stop].
struct Recovery {
  double baseline_gbps = 0.0;  // mean goodput over the 10 s before the episode
  double dip_gbps = 0.0;       // minimum goodput during the episode
  double recovery_sec = -1.0;  // first time past `stop` back at >= 90% of
                               // baseline, relative to `stop`; -1 = never
  double retransmits = 0.0;    // whole-run total

  double retained() const {
    return baseline_gbps > 0.0 ? dip_gbps / baseline_gbps : 0.0;
  }
};

// The dip/recovery math lives in report::analyze_recovery (dtnsim::report
// extracted it from this bench); this wrapper only adds the whole-run
// retransmit total and the bench's -1-means-never convention.
Recovery analyze(const harness::TestResult& r, double start, double stop) {
  Recovery out;
  out.retransmits = r.avg_retransmits;
  if (r.repeat_series.empty()) return out;
  const report::RecoveryStats stats = report::analyze_recovery(
      r.repeat_series.front(), "flow.goodput_bps",
      units::SimTime::from_seconds(start), units::SimTime::from_seconds(stop));
  out.baseline_gbps = stats.baseline.gbps();
  out.dip_gbps = stats.dip.gbps();
  out.recovery_sec = stats.recovered ? stats.recovery.seconds() : -1.0;
  return out;
}

scenario::Timeline loss_burst_timeline() {
  scenario::Timeline tl;
  tl.name = "loss-burst-2pct-5s";
  scenario::Event e;
  e.at_sec = 20.0;
  e.kind = scenario::EventKind::LossBurst;
  e.value = 0.02;
  e.duration_sec = 5.0;
  tl.events.push_back(e);
  return tl;
}

scenario::Timeline bg_surge_timeline() {
  // The AmLight story scaled up so it bites on the 200G ESnet link: the
  // residual capacity (~15G of 200G) drops below both senders' send rates.
  scenario::Timeline tl;
  tl.name = "bg-surge-185g-10s";
  scenario::Event e;
  e.at_sec = 20.0;
  e.kind = scenario::EventKind::BgSurge;
  e.value = 185e9;
  e.duration_sec = 10.0;
  tl.events.push_back(e);
  return tl;
}

Recovery run_case(const harness::Testbed& tb, const std::string& path,
                  kern::CongestionAlgo cc, units::Rate pacing,
                  scenario::Timeline tl, double start, double stop) {
  const auto r = Experiment(tb)
                     .path(path)
                     .congestion(cc)
                     .pacing(pacing)
                     .scenario(std::move(tl))
                     .telemetry(true)
                     .duration(units::SimTime::from_seconds(60))
                     .repeats(1)
                     .run();
  return analyze(r, start, stop);
}

void print_case(const char* label, const Recovery& r) {
  std::printf("  %-18s baseline %6.2f Gbps  dip %6.2f Gbps (retained %4.0f%%)  "
              "recovery %5.1fs  retrans %.0f\n",
              label, r.baseline_gbps, r.dip_gbps, r.retained() * 100.0,
              r.recovery_sec, r.retransmits);
}

}  // namespace

int main() {
  print_header("Scenario recovery",
               "transient-fault response: loss burst and bg surge",
               "60 s runs, episode at t=20s, per-second probe series");

  int violations = 0;
  const auto fail = [&](const std::string& msg) {
    std::printf("  ** VIOLATION: %s\n", msg.c_str());
    ++violations;
  };

  const auto tb = harness::esnet(kern::KernelVersion::V6_8);

  // ---- A. loss burst: BBR vs CUBIC, both paced at 10G --------------------
  std::printf("A. loss burst 2%% for 5 s on WAN 63ms, pacing 10G:\n");
  const auto bbr =
      run_case(tb, "WAN 63ms", kern::CongestionAlgo::BbrV3,
               units::Rate::from_gbps(10), loss_burst_timeline(), 20.0, 25.0);
  const auto cubic =
      run_case(tb, "WAN 63ms", kern::CongestionAlgo::Cubic,
               units::Rate::from_gbps(10), loss_burst_timeline(), 20.0, 25.0);
  print_case("bbr", bbr);
  print_case("cubic", cubic);

  // Sanity: the burst actually bit (both dipped below 97% of baseline).
  if (bbr.retained() > 0.97 || cubic.retained() > 0.97)
    fail("loss burst left goodput untouched — scenario hook inert?");
  // The ordering the paper's CC advice predicts (2% margin for probe noise).
  if (bbr.retained() + 0.02 < cubic.retained())
    fail(strfmt("BBR retained %.0f%% < CUBIC %.0f%% during the burst",
                bbr.retained() * 100.0, cubic.retained() * 100.0));
  if (bbr.recovery_sec < 0.0)
    fail("BBR never recovered to 90% of baseline");
  if (cubic.recovery_sec >= 0.0 && bbr.recovery_sec > cubic.recovery_sec + 1.0)
    fail(strfmt("BBR recovery %.1fs slower than CUBIC %.1fs",
                bbr.recovery_sec, cubic.recovery_sec));

  // ---- B. bg surge: paced vs unpaced -------------------------------------
  std::printf("\nB. background surge 185G for 10 s on WAN 63ms, CUBIC:\n");
  const auto paced =
      run_case(tb, "WAN 63ms", kern::CongestionAlgo::Cubic,
               units::Rate::from_gbps(20), bg_surge_timeline(), 20.0, 30.0);
  const auto unpaced =
      run_case(tb, "WAN 63ms", kern::CongestionAlgo::Cubic, units::Rate(),
               bg_surge_timeline(), 20.0, 30.0);
  print_case("paced 20G", paced);
  print_case("unpaced", unpaced);

  // Sanity: the surge actually bit the unpaced sender.
  if (unpaced.retained() > 0.97)
    fail("bg surge left the unpaced flow untouched — scenario hook inert?");
  if (paced.retained() + 0.02 < unpaced.retained())
    fail(strfmt("paced retained %.0f%% < unpaced %.0f%% under the surge",
                paced.retained() * 100.0, unpaced.retained() * 100.0));
  if (paced.retransmits > unpaced.retransmits)
    fail(strfmt("paced accumulated more retransmits (%.0f) than unpaced (%.0f)",
                paced.retransmits, unpaced.retransmits));

  if (violations > 0) {
    std::printf("\n%d recovery-ordering violation(s): the transient response\n"
                "no longer matches the paper's tuning story. See above.\n",
                violations);
    return 1;
  }
  std::printf("\nAll recovery orderings hold.\n");
  return 0;
}
