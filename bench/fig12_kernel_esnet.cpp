// Fig. 12: Kernel version results on the ESnet testbed (AMD host, single
// stream). Paper: 6.5 is ~12% faster than 5.15 and 6.8 ~17% faster than
// 6.5, over 30% total.
//
// Ported to the sweep campaign engine: the kernels x paths grid is declared
// once, cells run on the worker pool (--jobs N; defaults to serial), and a
// result cache directory (--cache DIR) makes re-runs free. Cells come back
// in grid order — kernels slowest axis, paths fastest — so row k, column p
// is cells[k * paths + p].
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main(int argc, char** argv) {
  print_header("Figure 12", "Kernel versions 5.15 / 6.5 / 6.8 (ESnet AMD, single stream)",
               "default iperf3 settings, LAN + WAN 63 ms, 60 s x 10");

  sweep::GridSpec grid;
  grid.name = "fig12";
  grid.testbed = "esnet";
  grid.kernels = {kern::KernelVersion::V5_15, kern::KernelVersion::V6_5,
                  kern::KernelVersion::V6_8};
  grid.paths = {"LAN", "WAN 63ms"};
  grid.duration_sec = 60;
  grid.repeats = 10;

  sweep::CampaignOptions run = parse_bench_campaign_flags(argc, argv);
  const auto report = sweep::run_campaign(grid, run);

  Table table({"Kernel", "LAN", "WAN 63ms"});
  double lan[3] = {0, 0, 0};
  for (std::size_t k = 0; k < grid.kernels.size(); ++k) {
    std::vector<std::string> row{kern::kernel_version_name(grid.kernels[k])};
    for (std::size_t p = 0; p < grid.paths.size(); ++p) {
      const auto& r = report.cells[k * grid.paths.size() + p].result;
      row.push_back(gbps_pm(r));
      if (p == 0) lan[k] = r.avg_gbps;
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("%s\n", campaign_summary(report).c_str());
  std::printf("Shape checks vs paper (LAN):\n");
  std::printf("  6.5 over 5.15 : %+.0f%%  (paper: ~12%%)\n", (lan[1] / lan[0] - 1) * 100);
  std::printf("  6.8 over 6.5  : %+.0f%%  (paper: ~17%%)\n", (lan[2] / lan[1] - 1) * 100);
  std::printf("  6.8 over 5.15 : %+.0f%%  (paper: >30%%)\n", (lan[2] / lan[0] - 1) * 100);
  return 0;
}
