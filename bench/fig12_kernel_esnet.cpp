// Fig. 12: Kernel version results on the ESnet testbed (AMD host, single
// stream). Paper: 6.5 is ~12% faster than 5.15 and 6.8 ~17% faster than
// 6.5, over 30% total.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Figure 12", "Kernel versions 5.15 / 6.5 / 6.8 (ESnet AMD, single stream)",
               "default iperf3 settings, LAN + WAN 63 ms, 60 s x 10");

  Table table({"Kernel", "LAN", "WAN 63ms"});
  double lan[3] = {0, 0, 0};
  int i = 0;
  for (const auto k :
       {kern::KernelVersion::V5_15, kern::KernelVersion::V6_5, kern::KernelVersion::V6_8}) {
    const auto tb = harness::esnet(k);
    std::vector<std::string> row{kern::kernel_version_name(k)};
    for (const char* p : {"LAN", "WAN 63ms"}) {
      const auto r = standard(Experiment(tb).path(p)).run();
      row.push_back(gbps_pm(r));
      if (std::string(p) == "LAN") lan[i] = r.avg_gbps;
    }
    table.add_row(std::move(row));
    ++i;
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape checks vs paper (LAN):\n");
  std::printf("  6.5 over 5.15 : %+.0f%%  (paper: ~12%%)\n", (lan[1] / lan[0] - 1) * 100);
  std::printf("  6.8 over 6.5  : %+.0f%%  (paper: ~17%%)\n", (lan[2] / lan[1] - 1) * 100);
  std::printf("  6.8 over 5.15 : %+.0f%%  (paper: >30%%)\n", (lan[2] / lan[0] - 1) * 100);
  return 0;
}
