// Future work (§V-C): scaling the parallel-stream scenario to 400G gear.
//
// Paper projection: "we would expect that 20 flows paced at 20 Gbps would
// be possible, and possibly 10x40G. But additional bottlenecks may be
// found." The simulation finds exactly that: host memory bandwidth becomes
// the wall before the 400G NIC does, and zerocopy pushes it much closer.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Future work: 400G projection",
               "20x20G and 10x40G parallel flows on 400G ConnectX-7 (AMD, kernel 6.8)",
               "LAN, copy vs zerocopy, 60 s x 10");

  auto tb = harness::esnet(kern::KernelVersion::V6_8);
  tb.sender.nic = net::connectx7_400g();
  tb.receiver.nic = net::connectx7_400g();
  auto& lan = tb.paths[0];
  lan.capacity_bps = 400e9;
  lan.burst_tolerance_bps = 360e9;

  struct Config {
    const char* label;
    bool zc;
    bool skip_rx;
  };
  // skip-rx-copy stands in for future receive-side zerocopy (header-data
  // split), which is exactly what §V-C says is needed on the RX side.
  const Config configs[] = {
      {"copy tx / copy rx", false, false},
      {"zerocopy tx / copy rx", true, false},
      {"zerocopy tx / rx-zerocopy (approx)", true, true},
  };

  Table table({"Flows x pace", "Config", "Max Tput", "Measured", "stdev"});
  for (const auto& c : configs) {
    for (const auto& [streams, pace] : {std::pair{20, 20.0}, std::pair{10, 40.0}}) {
      const auto r = standard(Experiment(tb)
                                  .streams(streams)
                                  .zerocopy(c.zc)
                                  .skip_rx_copy(c.skip_rx)
                                  .pacing(units::Rate::from_gbps(pace)))
                         .run();
      table.add_row({strfmt("%d x %.0fG", streams, pace), c.label,
                     gbps(std::min(streams * pace, 400.0)), gbps(r.avg_gbps),
                     strfmt("%.1f", r.stdev_gbps)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Projection: the RECEIVER's copy path hits the host memory-bandwidth\n"
              "wall near 190G — well before 400G, and sender zerocopy alone cannot\n"
              "move it. Only receive-side zerocopy (hardware GRO + header-data\n"
              "split, paper §V-C) unlocks the full rate: the 'additional\n"
              "bottleneck' the paper anticipated.\n");
  return 0;
}
