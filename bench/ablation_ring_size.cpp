// Ablation (§III-D): RX/TX ring size (ethtool -G rx 8192 tx 8192).
//
// Paper: "The ring buffer setting above only seemed to help on AMD hosts,
// not Intel hosts." Mechanism in the model: a larger ring only matters when
// unpaced trains overrun the burst drain — which binds on the AMD hosts
// (zerocopy unpaced WAN) but sits below the Intel sender's own CPU ceiling.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Ablation: ring buffers", "1024 vs 8192 descriptors, unpaced WAN zerocopy",
               "single stream, zerocopy unpaced (drop-prone config), 60 s x 10");

  Table table({"Host", "Ring", "Throughput", "stdev", "Retr"});
  for (const bool amd : {true, false}) {
    for (const int ring : {1024, 8192}) {
      auto e = amd ? Experiment(harness::esnet()).path("WAN 63ms")
                   : Experiment(harness::amlight()).path("WAN 54ms");
      const auto r = standard(e.zerocopy().ring(ring)).run();
      table.add_row({amd ? "ESnet (AMD)" : "AmLight (Intel)", strfmt("%d", ring),
                     gbps(r.avg_gbps), strfmt("%.1f", r.stdev_gbps),
                     count(r.avg_retransmits)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Shape check vs paper: the 8192 ring helps the AMD hosts (their\n"
              "burst drain is the binding constraint) and does little on Intel.\n");
  return 0;
}
