// Fig. 9: Sender performance with zerocopy for various optmem_max values
// (Intel host, kernel 6.5, zerocopy + pacing 50G).
//
// Paper shape: at the default 20 KB the sender is completely CPU-limited
// and WAN throughput collapses; 1 MB restores pacing-limited throughput on
// the shorter paths but only ~40G at 104 ms with the sender CPU as the
// bottleneck; ~3.25 MB reaches 50G on every path and cuts sender CPU
// further. Values above 3.25 MB add nothing.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Figure 9", "optmem_max sweep with zerocopy (Intel, kernel 6.5)",
               "zerocopy + pacing 50G, 60 s x 10, LAN + 25/54/104 ms");

  const auto tb = harness::amlight(kern::KernelVersion::V6_5);
  struct OptmemRow {
    const char* label;
    double bytes;
  };
  const OptmemRow rows[] = {
      {"20 KB (default)", 20480},
      {"1 MB (recommended)", 1048576},
      {"3.25 MB (best, 6.5)", 3405376},
      {"8 MB (no further gain)", 8388608},
  };

  Table table({"optmem_max", "Path", "Throughput", "TX Cores", "zc fallback"});
  for (const auto& om : rows) {
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      const auto r = standard(Experiment(tb)
                                  .path(p)
                                  .zerocopy()
                                  .pacing_gbps(50)
                                  .optmem_max(om.bytes))
                         .run();
      table.add_row({om.label, p, gbps_pm(r), pct(r.snd_cpu_pct),
                     strfmt("%.0f%%", r.zc_fallback_ratio * 100.0)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Mechanism on display: MSG_ZEROCOPY charges ~%g B of optmem per\n"
              "in-flight super-packet until the ACK returns; undersized optmem\n"
              "silently degrades to copy-with-zerocopy-overhead on long paths.\n",
              kern::kZcChargePerSuperPkt);
  return 0;
}
