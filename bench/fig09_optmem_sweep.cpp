// Fig. 9: Sender performance with zerocopy for various optmem_max values
// (Intel host, kernel 6.5, zerocopy + pacing 50G).
//
// Paper shape: at the default 20 KB the sender is completely CPU-limited
// and WAN throughput collapses; 1 MB restores pacing-limited throughput on
// the shorter paths but only ~40G at 104 ms with the sender CPU as the
// bottleneck; ~3.25 MB reaches 50G on every path and cuts sender CPU
// further. Values above 3.25 MB add nothing.
#include <cstring>

#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main(int argc, char** argv) {
  print_header("Figure 9", "optmem_max sweep with zerocopy (Intel, kernel 6.5)",
               "zerocopy + pacing 50G, 60 s x 10, LAN + 25/54/104 ms");

  // Optional output directory for the telemetry artifacts (default cwd),
  // plus --ss-out F for the kernel-eye snapshot log of the WAN 104ms cells
  // (one end-of-run dtnsim-ss report per optmem value; the Fig. 9 knee as
  // zc_copied_bytes / optmem_hiwater counters).
  std::string out_dir = ".";
  std::string ss_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ss-out") == 0 && i + 1 < argc) {
      ss_out = argv[++i];
    } else {
      out_dir = argv[i];
    }
  }

  const auto tb = harness::amlight(kern::KernelVersion::V6_5);
  struct OptmemRow {
    const char* label;
    double bytes;
  };
  const OptmemRow rows[] = {
      {"20 KB (default)", 20480},
      {"1 MB (recommended)", 1048576},
      {"3.25 MB (best, 6.5)", 3405376},
      {"8 MB (no further gain)", 8388608},
  };

  // Telemetry rides along on the WAN 104ms runs: the per-second
  // zc.optmem_used_bytes series is the paper's missing "why" plot — at
  // 20 KB occupancy pins to the ceiling (fallback knee), at 3.25 MB the
  // in-flight charge floats well below it.
  struct OccupancySeries {
    const char* label;
    double optmem_bytes;
    obs::SeriesTable series;
    std::shared_ptr<const obs::TraceSink> trace;
  };
  std::vector<OccupancySeries> occupancy;
  std::vector<obs::SsReport> ss_log;

  Table table({"optmem_max", "Path", "Throughput", "TX Cores", "zc fallback"});
  for (const auto& om : rows) {
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      const bool probe_this = std::string(p) == "WAN 104ms";
      auto ex = standard(Experiment(tb)
                             .path(p)
                             .zerocopy()
                             .pacing(units::Rate::from_gbps(50))
                             .optmem_max(units::Bytes(om.bytes)));
      if (probe_this) {
        ex.telemetry(true);
        if (!ss_out.empty()) ex.ss();
      }
      const auto r = ex.run();
      table.add_row({om.label, p, gbps_pm(r), pct(r.snd_cpu_pct),
                     strfmt("%.0f%%", r.zc_fallback_ratio * 100.0)});
      if (probe_this && !r.repeat_series.empty()) {
        occupancy.push_back({om.label, om.bytes, r.repeat_series.front(), r.trace});
      }
      if (probe_this && !r.ss_log.empty()) {
        for (auto rep : r.ss_log) {
          rep.label = om.label;  // distinguish the four optmem settings
          ss_log.push_back(std::move(rep));
        }
      }
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Mechanism on display: MSG_ZEROCOPY charges ~%g B of optmem per\n"
              "in-flight super-packet until the ACK returns; undersized optmem\n"
              "silently degrades to copy-with-zerocopy-overhead on long paths.\n\n",
              kern::kZcChargePerSuperPkt);

  // The fallback knee, from the probe series (WAN 104ms, repeat 0).
  std::printf("optmem occupancy on WAN 104ms (per-second probe, repeat 0):\n");
  std::vector<obs::LabeledSeries> labeled;
  std::vector<std::pair<std::string, const obs::TraceSink*>> sinks;
  for (const auto& o : occupancy) {
    const double peak = o.series.max_of("zc.optmem_used_bytes");
    const std::size_t knees = o.trace ? o.trace->count("zc_fallback") : 0;
    std::printf("  %-22s peak in-flight %9.0f B of %9.0f (%5.1f%%), "
                "%zu fallback onset%s\n",
                o.label, peak, o.optmem_bytes, 100.0 * peak / o.optmem_bytes,
                knees, knees == 1 ? "" : "s");
    labeled.push_back({o.label, 0, &o.series});
    if (o.trace) sinks.emplace_back(o.label, o.trace.get());
  }
  const std::string csv_path = out_dir + "/fig09_optmem_series.csv";
  const std::string trace_path = out_dir + "/fig09_trace.json";
  if (obs::write_merged_series_csv(csv_path, labeled) &&
      obs::write_merged_chrome_trace(trace_path, sinks)) {
    std::printf("\nwrote %s and %s (load the trace in ui.perfetto.dev)\n",
                csv_path.c_str(), trace_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write telemetry artifacts under %s\n",
                 out_dir.c_str());
    return 1;
  }
  if (!ss_out.empty()) {
    if (!obs::write_ss_log(ss_out, ss_log)) {
      std::fprintf(stderr, "cannot write ss log to %s\n", ss_out.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu dtnsim-ss snapshots; replay with dtnsim-ss "
                "--replay)\n",
                ss_out.c_str(), ss_log.size());
  }
  return 0;
}
