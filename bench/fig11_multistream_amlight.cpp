// Fig. 11: 8 parallel flows on the AmLight testbed (Intel host, kernel 6.8),
// paced at 10 and 9 Gbps per flow, with ~16 Gbps of production background
// traffic on the WAN paths.
//
// Paper shape: the unpaced default baseline decays from ~62 Gbps (LAN)
// toward ~50 Gbps at 104 ms; unlike on the idle ESnet testbed, *unpaced*
// zerocopy cannot reach maximum on the WAN (background congestion); pacing
// at 9 G/flow is steadier than at 10.
#include "bench_common.hpp"

using namespace dtnsim;
using namespace dtnsim::bench;

int main() {
  print_header("Figure 11", "8 flows on AmLight (Intel, kernel 6.8), bg traffic ~16G",
               "default unpaced, zerocopy unpaced, zerocopy paced 10/9 G/flow, 60 s x 10");

  const auto tb = harness::amlight(kern::KernelVersion::V6_8);
  struct Config {
    const char* label;
    bool zc;
    double pace;
  };
  const Config configs[] = {
      {"default (unpaced)", false, 0},
      {"zerocopy (unpaced)", true, 0},
      {"zerocopy+pace 10G", true, 10},
      {"zerocopy+pace 9G", true, 9},
  };

  Table table({"Config", "LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"});
  for (const auto& c : configs) {
    std::vector<std::string> row{c.label};
    for (const char* p : {"LAN", "WAN 25ms", "WAN 54ms", "WAN 104ms"}) {
      const auto r =
          standard(Experiment(tb).path(p).streams(8).zerocopy(c.zc).pacing(units::Rate::from_gbps(c.pace)))
              .run();
      row.push_back(gbps_pm(r));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Paper shape: baseline decays with latency (~62 -> ~50 Gbps);\n"
              "unpaced zerocopy underperforms on WAN due to background traffic;\n"
              "9 G/flow pacing has smaller stddev than 10 G/flow.\n");
  return 0;
}
