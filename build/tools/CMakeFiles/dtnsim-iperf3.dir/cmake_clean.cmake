file(REMOVE_RECURSE
  "CMakeFiles/dtnsim-iperf3.dir/dtnsim_iperf3.cpp.o"
  "CMakeFiles/dtnsim-iperf3.dir/dtnsim_iperf3.cpp.o.d"
  "dtnsim-iperf3"
  "dtnsim-iperf3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim-iperf3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
