# Empty dependencies file for dtnsim-iperf3.
# This may be replaced when dependencies are built.
