# Empty dependencies file for dtnsim-repro.
# This may be replaced when dependencies are built.
