file(REMOVE_RECURSE
  "CMakeFiles/dtnsim-repro.dir/dtnsim_repro.cpp.o"
  "CMakeFiles/dtnsim-repro.dir/dtnsim_repro.cpp.o.d"
  "dtnsim-repro"
  "dtnsim-repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim-repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
