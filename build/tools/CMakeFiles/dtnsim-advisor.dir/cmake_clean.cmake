file(REMOVE_RECURSE
  "CMakeFiles/dtnsim-advisor.dir/dtnsim_advisor.cpp.o"
  "CMakeFiles/dtnsim-advisor.dir/dtnsim_advisor.cpp.o.d"
  "dtnsim-advisor"
  "dtnsim-advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim-advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
