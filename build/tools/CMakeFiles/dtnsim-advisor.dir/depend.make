# Empty dependencies file for dtnsim-advisor.
# This may be replaced when dependencies are built.
