# Empty compiler generated dependencies file for parallel_stream_planner.
# This may be replaced when dependencies are built.
