file(REMOVE_RECURSE
  "CMakeFiles/parallel_stream_planner.dir/parallel_stream_planner.cpp.o"
  "CMakeFiles/parallel_stream_planner.dir/parallel_stream_planner.cpp.o.d"
  "parallel_stream_planner"
  "parallel_stream_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_stream_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
