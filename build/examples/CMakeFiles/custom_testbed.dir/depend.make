# Empty dependencies file for custom_testbed.
# This may be replaced when dependencies are built.
