file(REMOVE_RECURSE
  "CMakeFiles/custom_testbed.dir/custom_testbed.cpp.o"
  "CMakeFiles/custom_testbed.dir/custom_testbed.cpp.o.d"
  "custom_testbed"
  "custom_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
