# Empty dependencies file for dtn_tuning_advisor.
# This may be replaced when dependencies are built.
