file(REMOVE_RECURSE
  "CMakeFiles/dtn_tuning_advisor.dir/dtn_tuning_advisor.cpp.o"
  "CMakeFiles/dtn_tuning_advisor.dir/dtn_tuning_advisor.cpp.o.d"
  "dtn_tuning_advisor"
  "dtn_tuning_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_tuning_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
