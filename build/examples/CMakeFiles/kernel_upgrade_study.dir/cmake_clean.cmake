file(REMOVE_RECURSE
  "CMakeFiles/kernel_upgrade_study.dir/kernel_upgrade_study.cpp.o"
  "CMakeFiles/kernel_upgrade_study.dir/kernel_upgrade_study.cpp.o.d"
  "kernel_upgrade_study"
  "kernel_upgrade_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_upgrade_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
