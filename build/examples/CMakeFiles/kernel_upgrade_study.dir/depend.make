# Empty dependencies file for kernel_upgrade_study.
# This may be replaced when dependencies are built.
