file(REMOVE_RECURSE
  "CMakeFiles/test_neper.dir/test_neper.cpp.o"
  "CMakeFiles/test_neper.dir/test_neper.cpp.o.d"
  "test_neper"
  "test_neper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
