# Empty dependencies file for test_neper.
# This may be replaced when dependencies are built.
