file(REMOVE_RECURSE
  "CMakeFiles/test_integration_multistream.dir/test_integration_multistream.cpp.o"
  "CMakeFiles/test_integration_multistream.dir/test_integration_multistream.cpp.o.d"
  "test_integration_multistream"
  "test_integration_multistream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_multistream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
