# Empty dependencies file for test_integration_multistream.
# This may be replaced when dependencies are built.
