file(REMOVE_RECURSE
  "CMakeFiles/test_calibration_contract.dir/test_calibration_contract.cpp.o"
  "CMakeFiles/test_calibration_contract.dir/test_calibration_contract.cpp.o.d"
  "test_calibration_contract"
  "test_calibration_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibration_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
