# Empty dependencies file for test_calibration_contract.
# This may be replaced when dependencies are built.
