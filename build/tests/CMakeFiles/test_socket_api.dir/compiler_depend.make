# Empty compiler generated dependencies file for test_socket_api.
# This may be replaced when dependencies are built.
