file(REMOVE_RECURSE
  "CMakeFiles/test_socket_api.dir/test_socket_api.cpp.o"
  "CMakeFiles/test_socket_api.dir/test_socket_api.cpp.o.d"
  "test_socket_api"
  "test_socket_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_socket_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
