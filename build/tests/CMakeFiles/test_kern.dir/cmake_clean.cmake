file(REMOVE_RECURSE
  "CMakeFiles/test_kern.dir/test_kern.cpp.o"
  "CMakeFiles/test_kern.dir/test_kern.cpp.o.d"
  "test_kern"
  "test_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
