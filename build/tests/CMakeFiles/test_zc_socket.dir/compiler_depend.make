# Empty compiler generated dependencies file for test_zc_socket.
# This may be replaced when dependencies are built.
