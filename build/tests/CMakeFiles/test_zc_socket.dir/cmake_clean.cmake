file(REMOVE_RECURSE
  "CMakeFiles/test_zc_socket.dir/test_zc_socket.cpp.o"
  "CMakeFiles/test_zc_socket.dir/test_zc_socket.cpp.o.d"
  "test_zc_socket"
  "test_zc_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zc_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
