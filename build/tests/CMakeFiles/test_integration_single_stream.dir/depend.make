# Empty dependencies file for test_integration_single_stream.
# This may be replaced when dependencies are built.
