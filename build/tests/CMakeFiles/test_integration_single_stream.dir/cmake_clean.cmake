file(REMOVE_RECURSE
  "CMakeFiles/test_integration_single_stream.dir/test_integration_single_stream.cpp.o"
  "CMakeFiles/test_integration_single_stream.dir/test_integration_single_stream.cpp.o.d"
  "test_integration_single_stream"
  "test_integration_single_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_single_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
