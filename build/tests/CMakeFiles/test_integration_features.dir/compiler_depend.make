# Empty compiler generated dependencies file for test_integration_features.
# This may be replaced when dependencies are built.
