file(REMOVE_RECURSE
  "CMakeFiles/test_integration_features.dir/test_integration_features.cpp.o"
  "CMakeFiles/test_integration_features.dir/test_integration_features.cpp.o.d"
  "test_integration_features"
  "test_integration_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
