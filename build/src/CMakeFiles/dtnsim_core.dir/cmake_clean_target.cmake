file(REMOVE_RECURSE
  "libdtnsim_core.a"
)
