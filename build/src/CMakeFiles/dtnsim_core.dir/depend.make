# Empty dependencies file for dtnsim_core.
# This may be replaced when dependencies are built.
