file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_core.dir/dtnsim/core/advisor.cpp.o"
  "CMakeFiles/dtnsim_core.dir/dtnsim/core/advisor.cpp.o.d"
  "CMakeFiles/dtnsim_core.dir/dtnsim/core/experiment.cpp.o"
  "CMakeFiles/dtnsim_core.dir/dtnsim/core/experiment.cpp.o.d"
  "libdtnsim_core.a"
  "libdtnsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
