file(REMOVE_RECURSE
  "libdtnsim_kern.a"
)
