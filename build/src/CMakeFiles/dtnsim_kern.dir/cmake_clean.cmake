file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/gro.cpp.o"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/gro.cpp.o.d"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/gso.cpp.o"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/gso.cpp.o.d"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/skb.cpp.o"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/skb.cpp.o.d"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/socket_api.cpp.o"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/socket_api.cpp.o.d"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/sysctl.cpp.o"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/sysctl.cpp.o.d"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/version.cpp.o"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/version.cpp.o.d"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/zc_socket.cpp.o"
  "CMakeFiles/dtnsim_kern.dir/dtnsim/kern/zc_socket.cpp.o.d"
  "libdtnsim_kern.a"
  "libdtnsim_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
