# Empty dependencies file for dtnsim_kern.
# This may be replaced when dependencies are built.
