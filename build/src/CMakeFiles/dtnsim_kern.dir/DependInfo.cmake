
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtnsim/kern/gro.cpp" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/gro.cpp.o" "gcc" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/gro.cpp.o.d"
  "/root/repo/src/dtnsim/kern/gso.cpp" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/gso.cpp.o" "gcc" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/gso.cpp.o.d"
  "/root/repo/src/dtnsim/kern/skb.cpp" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/skb.cpp.o" "gcc" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/skb.cpp.o.d"
  "/root/repo/src/dtnsim/kern/socket_api.cpp" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/socket_api.cpp.o" "gcc" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/socket_api.cpp.o.d"
  "/root/repo/src/dtnsim/kern/sysctl.cpp" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/sysctl.cpp.o" "gcc" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/sysctl.cpp.o.d"
  "/root/repo/src/dtnsim/kern/version.cpp" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/version.cpp.o" "gcc" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/version.cpp.o.d"
  "/root/repo/src/dtnsim/kern/zc_socket.cpp" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/zc_socket.cpp.o" "gcc" "src/CMakeFiles/dtnsim_kern.dir/dtnsim/kern/zc_socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtnsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
