file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_cli.dir/dtnsim/cli/cli.cpp.o"
  "CMakeFiles/dtnsim_cli.dir/dtnsim/cli/cli.cpp.o.d"
  "libdtnsim_cli.a"
  "libdtnsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
