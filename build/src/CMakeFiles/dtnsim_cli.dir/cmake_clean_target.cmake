file(REMOVE_RECURSE
  "libdtnsim_cli.a"
)
