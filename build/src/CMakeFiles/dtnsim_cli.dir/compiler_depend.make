# Empty compiler generated dependencies file for dtnsim_cli.
# This may be replaced when dependencies are built.
