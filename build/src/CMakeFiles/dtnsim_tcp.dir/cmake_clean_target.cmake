file(REMOVE_RECURSE
  "libdtnsim_tcp.a"
)
