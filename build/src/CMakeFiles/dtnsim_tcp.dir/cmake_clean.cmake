file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/bbr.cpp.o"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/bbr.cpp.o.d"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/cc.cpp.o"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/cc.cpp.o.d"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/cubic.cpp.o"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/cubic.cpp.o.d"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/reno.cpp.o"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/reno.cpp.o.d"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/rtt.cpp.o"
  "CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/rtt.cpp.o.d"
  "libdtnsim_tcp.a"
  "libdtnsim_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
