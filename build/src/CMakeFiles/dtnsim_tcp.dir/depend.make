# Empty dependencies file for dtnsim_tcp.
# This may be replaced when dependencies are built.
