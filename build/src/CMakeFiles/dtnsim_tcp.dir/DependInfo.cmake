
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtnsim/tcp/bbr.cpp" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/bbr.cpp.o" "gcc" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/bbr.cpp.o.d"
  "/root/repo/src/dtnsim/tcp/cc.cpp" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/cc.cpp.o" "gcc" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/cc.cpp.o.d"
  "/root/repo/src/dtnsim/tcp/cubic.cpp" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/cubic.cpp.o" "gcc" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/cubic.cpp.o.d"
  "/root/repo/src/dtnsim/tcp/reno.cpp" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/reno.cpp.o" "gcc" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/reno.cpp.o.d"
  "/root/repo/src/dtnsim/tcp/rtt.cpp" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/rtt.cpp.o" "gcc" "src/CMakeFiles/dtnsim_tcp.dir/dtnsim/tcp/rtt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtnsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
