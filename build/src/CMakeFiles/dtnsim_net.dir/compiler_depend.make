# Empty compiler generated dependencies file for dtnsim_net.
# This may be replaced when dependencies are built.
