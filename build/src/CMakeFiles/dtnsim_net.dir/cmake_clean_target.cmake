file(REMOVE_RECURSE
  "libdtnsim_net.a"
)
