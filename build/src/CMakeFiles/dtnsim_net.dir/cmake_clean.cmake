file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_net.dir/dtnsim/net/nic.cpp.o"
  "CMakeFiles/dtnsim_net.dir/dtnsim/net/nic.cpp.o.d"
  "CMakeFiles/dtnsim_net.dir/dtnsim/net/path.cpp.o"
  "CMakeFiles/dtnsim_net.dir/dtnsim/net/path.cpp.o.d"
  "CMakeFiles/dtnsim_net.dir/dtnsim/net/qdisc.cpp.o"
  "CMakeFiles/dtnsim_net.dir/dtnsim/net/qdisc.cpp.o.d"
  "CMakeFiles/dtnsim_net.dir/dtnsim/net/switch_model.cpp.o"
  "CMakeFiles/dtnsim_net.dir/dtnsim/net/switch_model.cpp.o.d"
  "libdtnsim_net.a"
  "libdtnsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
