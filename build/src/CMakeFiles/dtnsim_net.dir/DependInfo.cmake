
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtnsim/net/nic.cpp" "src/CMakeFiles/dtnsim_net.dir/dtnsim/net/nic.cpp.o" "gcc" "src/CMakeFiles/dtnsim_net.dir/dtnsim/net/nic.cpp.o.d"
  "/root/repo/src/dtnsim/net/path.cpp" "src/CMakeFiles/dtnsim_net.dir/dtnsim/net/path.cpp.o" "gcc" "src/CMakeFiles/dtnsim_net.dir/dtnsim/net/path.cpp.o.d"
  "/root/repo/src/dtnsim/net/qdisc.cpp" "src/CMakeFiles/dtnsim_net.dir/dtnsim/net/qdisc.cpp.o" "gcc" "src/CMakeFiles/dtnsim_net.dir/dtnsim/net/qdisc.cpp.o.d"
  "/root/repo/src/dtnsim/net/switch_model.cpp" "src/CMakeFiles/dtnsim_net.dir/dtnsim/net/switch_model.cpp.o" "gcc" "src/CMakeFiles/dtnsim_net.dir/dtnsim/net/switch_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtnsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
