# Empty dependencies file for dtnsim_flow.
# This may be replaced when dependencies are built.
