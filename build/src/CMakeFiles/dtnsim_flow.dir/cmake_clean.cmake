file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_flow.dir/dtnsim/flow/packet_sim.cpp.o"
  "CMakeFiles/dtnsim_flow.dir/dtnsim/flow/packet_sim.cpp.o.d"
  "CMakeFiles/dtnsim_flow.dir/dtnsim/flow/transfer.cpp.o"
  "CMakeFiles/dtnsim_flow.dir/dtnsim/flow/transfer.cpp.o.d"
  "libdtnsim_flow.a"
  "libdtnsim_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
