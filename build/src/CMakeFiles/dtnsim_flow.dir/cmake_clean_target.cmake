file(REMOVE_RECURSE
  "libdtnsim_flow.a"
)
