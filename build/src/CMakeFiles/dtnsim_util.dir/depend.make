# Empty dependencies file for dtnsim_util.
# This may be replaced when dependencies are built.
