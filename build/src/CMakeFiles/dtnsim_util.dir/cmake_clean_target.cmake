file(REMOVE_RECURSE
  "libdtnsim_util.a"
)
