file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/csv.cpp.o"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/csv.cpp.o.d"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/json.cpp.o"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/json.cpp.o.d"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/log.cpp.o"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/log.cpp.o.d"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/rng.cpp.o"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/rng.cpp.o.d"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/stats.cpp.o"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/stats.cpp.o.d"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/strfmt.cpp.o"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/strfmt.cpp.o.d"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/table.cpp.o"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/table.cpp.o.d"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/units.cpp.o"
  "CMakeFiles/dtnsim_util.dir/dtnsim/util/units.cpp.o.d"
  "libdtnsim_util.a"
  "libdtnsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
