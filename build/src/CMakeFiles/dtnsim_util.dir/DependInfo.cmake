
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtnsim/util/csv.cpp" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/csv.cpp.o" "gcc" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/csv.cpp.o.d"
  "/root/repo/src/dtnsim/util/json.cpp" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/json.cpp.o" "gcc" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/json.cpp.o.d"
  "/root/repo/src/dtnsim/util/log.cpp" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/log.cpp.o" "gcc" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/log.cpp.o.d"
  "/root/repo/src/dtnsim/util/rng.cpp" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/rng.cpp.o" "gcc" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/rng.cpp.o.d"
  "/root/repo/src/dtnsim/util/stats.cpp" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/stats.cpp.o" "gcc" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/stats.cpp.o.d"
  "/root/repo/src/dtnsim/util/strfmt.cpp" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/strfmt.cpp.o" "gcc" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/strfmt.cpp.o.d"
  "/root/repo/src/dtnsim/util/table.cpp" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/table.cpp.o" "gcc" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/table.cpp.o.d"
  "/root/repo/src/dtnsim/util/units.cpp" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/units.cpp.o" "gcc" "src/CMakeFiles/dtnsim_util.dir/dtnsim/util/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
