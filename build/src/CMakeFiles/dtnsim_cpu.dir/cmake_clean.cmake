file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/affinity.cpp.o"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/affinity.cpp.o.d"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/budget.cpp.o"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/budget.cpp.o.d"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/cost_model.cpp.o"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/cost_model.cpp.o.d"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/spec.cpp.o"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/spec.cpp.o.d"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/topology.cpp.o"
  "CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/topology.cpp.o.d"
  "libdtnsim_cpu.a"
  "libdtnsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
