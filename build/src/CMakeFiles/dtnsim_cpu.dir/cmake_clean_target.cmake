file(REMOVE_RECURSE
  "libdtnsim_cpu.a"
)
