# Empty compiler generated dependencies file for dtnsim_cpu.
# This may be replaced when dependencies are built.
