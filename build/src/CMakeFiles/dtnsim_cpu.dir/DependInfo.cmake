
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtnsim/cpu/affinity.cpp" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/affinity.cpp.o" "gcc" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/affinity.cpp.o.d"
  "/root/repo/src/dtnsim/cpu/budget.cpp" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/budget.cpp.o" "gcc" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/budget.cpp.o.d"
  "/root/repo/src/dtnsim/cpu/cost_model.cpp" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/cost_model.cpp.o" "gcc" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/cost_model.cpp.o.d"
  "/root/repo/src/dtnsim/cpu/spec.cpp" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/spec.cpp.o" "gcc" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/spec.cpp.o.d"
  "/root/repo/src/dtnsim/cpu/topology.cpp" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/topology.cpp.o" "gcc" "src/CMakeFiles/dtnsim_cpu.dir/dtnsim/cpu/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtnsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
