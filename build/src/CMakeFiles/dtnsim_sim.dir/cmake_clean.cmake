file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_sim.dir/dtnsim/sim/engine.cpp.o"
  "CMakeFiles/dtnsim_sim.dir/dtnsim/sim/engine.cpp.o.d"
  "CMakeFiles/dtnsim_sim.dir/dtnsim/sim/event_queue.cpp.o"
  "CMakeFiles/dtnsim_sim.dir/dtnsim/sim/event_queue.cpp.o.d"
  "libdtnsim_sim.a"
  "libdtnsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
