file(REMOVE_RECURSE
  "libdtnsim_sim.a"
)
