# Empty compiler generated dependencies file for dtnsim_sim.
# This may be replaced when dependencies are built.
