
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtnsim/host/host.cpp" "src/CMakeFiles/dtnsim_host.dir/dtnsim/host/host.cpp.o" "gcc" "src/CMakeFiles/dtnsim_host.dir/dtnsim/host/host.cpp.o.d"
  "/root/repo/src/dtnsim/host/tuning.cpp" "src/CMakeFiles/dtnsim_host.dir/dtnsim/host/tuning.cpp.o" "gcc" "src/CMakeFiles/dtnsim_host.dir/dtnsim/host/tuning.cpp.o.d"
  "/root/repo/src/dtnsim/host/vm.cpp" "src/CMakeFiles/dtnsim_host.dir/dtnsim/host/vm.cpp.o" "gcc" "src/CMakeFiles/dtnsim_host.dir/dtnsim/host/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtnsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
