# Empty compiler generated dependencies file for dtnsim_host.
# This may be replaced when dependencies are built.
