src/CMakeFiles/dtnsim_host.dir/dtnsim/host/vm.cpp.o: \
 /root/repo/src/dtnsim/host/vm.cpp /usr/include/stdc-predef.h \
 /root/repo/src/dtnsim/host/vm.hpp
