file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_host.dir/dtnsim/host/host.cpp.o"
  "CMakeFiles/dtnsim_host.dir/dtnsim/host/host.cpp.o.d"
  "CMakeFiles/dtnsim_host.dir/dtnsim/host/tuning.cpp.o"
  "CMakeFiles/dtnsim_host.dir/dtnsim/host/tuning.cpp.o.d"
  "CMakeFiles/dtnsim_host.dir/dtnsim/host/vm.cpp.o"
  "CMakeFiles/dtnsim_host.dir/dtnsim/host/vm.cpp.o.d"
  "libdtnsim_host.a"
  "libdtnsim_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
