file(REMOVE_RECURSE
  "libdtnsim_host.a"
)
