file(REMOVE_RECURSE
  "libdtnsim_harness.a"
)
