
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtnsim/harness/dataset.cpp" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/dataset.cpp.o" "gcc" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/dataset.cpp.o.d"
  "/root/repo/src/dtnsim/harness/experiments.cpp" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/experiments.cpp.o" "gcc" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/experiments.cpp.o.d"
  "/root/repo/src/dtnsim/harness/plot.cpp" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/plot.cpp.o" "gcc" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/plot.cpp.o.d"
  "/root/repo/src/dtnsim/harness/runner.cpp" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/runner.cpp.o" "gcc" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/runner.cpp.o.d"
  "/root/repo/src/dtnsim/harness/testbeds.cpp" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/testbeds.cpp.o" "gcc" "src/CMakeFiles/dtnsim_harness.dir/dtnsim/harness/testbeds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtnsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtnsim_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
