# Empty compiler generated dependencies file for dtnsim_harness.
# This may be replaced when dependencies are built.
