file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/dataset.cpp.o"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/dataset.cpp.o.d"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/experiments.cpp.o"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/experiments.cpp.o.d"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/plot.cpp.o"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/plot.cpp.o.d"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/runner.cpp.o"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/runner.cpp.o.d"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/testbeds.cpp.o"
  "CMakeFiles/dtnsim_harness.dir/dtnsim/harness/testbeds.cpp.o.d"
  "libdtnsim_harness.a"
  "libdtnsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
