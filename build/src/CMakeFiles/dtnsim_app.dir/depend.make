# Empty dependencies file for dtnsim_app.
# This may be replaced when dependencies are built.
