file(REMOVE_RECURSE
  "CMakeFiles/dtnsim_app.dir/dtnsim/app/iperf.cpp.o"
  "CMakeFiles/dtnsim_app.dir/dtnsim/app/iperf.cpp.o.d"
  "CMakeFiles/dtnsim_app.dir/dtnsim/app/mpstat.cpp.o"
  "CMakeFiles/dtnsim_app.dir/dtnsim/app/mpstat.cpp.o.d"
  "CMakeFiles/dtnsim_app.dir/dtnsim/app/neper.cpp.o"
  "CMakeFiles/dtnsim_app.dir/dtnsim/app/neper.cpp.o.d"
  "libdtnsim_app.a"
  "libdtnsim_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
