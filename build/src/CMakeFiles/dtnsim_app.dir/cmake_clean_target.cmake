file(REMOVE_RECURSE
  "libdtnsim_app.a"
)
