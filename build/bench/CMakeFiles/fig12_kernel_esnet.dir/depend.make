# Empty dependencies file for fig12_kernel_esnet.
# This may be replaced when dependencies are built.
