file(REMOVE_RECURSE
  "CMakeFiles/fig12_kernel_esnet.dir/fig12_kernel_esnet.cpp.o"
  "CMakeFiles/fig12_kernel_esnet.dir/fig12_kernel_esnet.cpp.o.d"
  "fig12_kernel_esnet"
  "fig12_kernel_esnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_kernel_esnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
