file(REMOVE_RECURSE
  "CMakeFiles/fig08_cpu_util_amd.dir/fig08_cpu_util_amd.cpp.o"
  "CMakeFiles/fig08_cpu_util_amd.dir/fig08_cpu_util_amd.cpp.o.d"
  "fig08_cpu_util_amd"
  "fig08_cpu_util_amd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cpu_util_amd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
