# Empty dependencies file for fig08_cpu_util_amd.
# This may be replaced when dependencies are built.
