# Empty dependencies file for fig09_optmem_sweep.
# This may be replaced when dependencies are built.
