file(REMOVE_RECURSE
  "CMakeFiles/fig09_optmem_sweep.dir/fig09_optmem_sweep.cpp.o"
  "CMakeFiles/fig09_optmem_sweep.dir/fig09_optmem_sweep.cpp.o.d"
  "fig09_optmem_sweep"
  "fig09_optmem_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_optmem_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
