# Empty dependencies file for table2_esnet_wan.
# This may be replaced when dependencies are built.
