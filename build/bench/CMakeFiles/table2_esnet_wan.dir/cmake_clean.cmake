file(REMOVE_RECURSE
  "CMakeFiles/table2_esnet_wan.dir/table2_esnet_wan.cpp.o"
  "CMakeFiles/table2_esnet_wan.dir/table2_esnet_wan.cpp.o.d"
  "table2_esnet_wan"
  "table2_esnet_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_esnet_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
