file(REMOVE_RECURSE
  "CMakeFiles/ablation_congestion_control.dir/ablation_congestion_control.cpp.o"
  "CMakeFiles/ablation_congestion_control.dir/ablation_congestion_control.cpp.o.d"
  "ablation_congestion_control"
  "ablation_congestion_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_congestion_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
