# Empty compiler generated dependencies file for ablation_ring_size.
# This may be replaced when dependencies are built.
