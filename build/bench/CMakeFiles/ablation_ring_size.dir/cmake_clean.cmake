file(REMOVE_RECURSE
  "CMakeFiles/ablation_ring_size.dir/ablation_ring_size.cpp.o"
  "CMakeFiles/ablation_ring_size.dir/ablation_ring_size.cpp.o.d"
  "ablation_ring_size"
  "ablation_ring_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ring_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
