# Empty compiler generated dependencies file for fig05_single_stream_amlight.
# This may be replaced when dependencies are built.
