file(REMOVE_RECURSE
  "CMakeFiles/fig05_single_stream_amlight.dir/fig05_single_stream_amlight.cpp.o"
  "CMakeFiles/fig05_single_stream_amlight.dir/fig05_single_stream_amlight.cpp.o.d"
  "fig05_single_stream_amlight"
  "fig05_single_stream_amlight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_single_stream_amlight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
