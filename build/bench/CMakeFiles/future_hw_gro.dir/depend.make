# Empty dependencies file for future_hw_gro.
# This may be replaced when dependencies are built.
