file(REMOVE_RECURSE
  "CMakeFiles/future_hw_gro.dir/future_hw_gro.cpp.o"
  "CMakeFiles/future_hw_gro.dir/future_hw_gro.cpp.o.d"
  "future_hw_gro"
  "future_hw_gro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_hw_gro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
