# Empty compiler generated dependencies file for fig11_multistream_amlight.
# This may be replaced when dependencies are built.
