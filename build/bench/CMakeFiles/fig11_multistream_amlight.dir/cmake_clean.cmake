file(REMOVE_RECURSE
  "CMakeFiles/fig11_multistream_amlight.dir/fig11_multistream_amlight.cpp.o"
  "CMakeFiles/fig11_multistream_amlight.dir/fig11_multistream_amlight.cpp.o.d"
  "fig11_multistream_amlight"
  "fig11_multistream_amlight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_multistream_amlight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
