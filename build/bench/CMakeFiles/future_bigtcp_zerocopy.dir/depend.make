# Empty dependencies file for future_bigtcp_zerocopy.
# This may be replaced when dependencies are built.
