file(REMOVE_RECURSE
  "CMakeFiles/future_bigtcp_zerocopy.dir/future_bigtcp_zerocopy.cpp.o"
  "CMakeFiles/future_bigtcp_zerocopy.dir/future_bigtcp_zerocopy.cpp.o.d"
  "future_bigtcp_zerocopy"
  "future_bigtcp_zerocopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_bigtcp_zerocopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
