# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig04_vm_vs_baremetal.
