file(REMOVE_RECURSE
  "CMakeFiles/fig04_vm_vs_baremetal.dir/fig04_vm_vs_baremetal.cpp.o"
  "CMakeFiles/fig04_vm_vs_baremetal.dir/fig04_vm_vs_baremetal.cpp.o.d"
  "fig04_vm_vs_baremetal"
  "fig04_vm_vs_baremetal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_vm_vs_baremetal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
