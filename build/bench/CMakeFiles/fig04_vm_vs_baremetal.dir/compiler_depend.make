# Empty compiler generated dependencies file for fig04_vm_vs_baremetal.
# This may be replaced when dependencies are built.
