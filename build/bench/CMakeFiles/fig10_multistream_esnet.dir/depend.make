# Empty dependencies file for fig10_multistream_esnet.
# This may be replaced when dependencies are built.
