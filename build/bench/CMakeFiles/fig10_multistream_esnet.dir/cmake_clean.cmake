file(REMOVE_RECURSE
  "CMakeFiles/fig10_multistream_esnet.dir/fig10_multistream_esnet.cpp.o"
  "CMakeFiles/fig10_multistream_esnet.dir/fig10_multistream_esnet.cpp.o.d"
  "fig10_multistream_esnet"
  "fig10_multistream_esnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multistream_esnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
