file(REMOVE_RECURSE
  "CMakeFiles/fig06_single_stream_esnet.dir/fig06_single_stream_esnet.cpp.o"
  "CMakeFiles/fig06_single_stream_esnet.dir/fig06_single_stream_esnet.cpp.o.d"
  "fig06_single_stream_esnet"
  "fig06_single_stream_esnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_single_stream_esnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
