# Empty dependencies file for fig06_single_stream_esnet.
# This may be replaced when dependencies are built.
