file(REMOVE_RECURSE
  "CMakeFiles/fig07_cpu_util_intel.dir/fig07_cpu_util_intel.cpp.o"
  "CMakeFiles/fig07_cpu_util_intel.dir/fig07_cpu_util_intel.cpp.o.d"
  "fig07_cpu_util_intel"
  "fig07_cpu_util_intel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cpu_util_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
