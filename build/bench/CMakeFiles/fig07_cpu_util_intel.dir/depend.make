# Empty dependencies file for fig07_cpu_util_intel.
# This may be replaced when dependencies are built.
