# Empty compiler generated dependencies file for fig13_kernel_amlight.
# This may be replaced when dependencies are built.
