file(REMOVE_RECURSE
  "CMakeFiles/fig13_kernel_amlight.dir/fig13_kernel_amlight.cpp.o"
  "CMakeFiles/fig13_kernel_amlight.dir/fig13_kernel_amlight.cpp.o.d"
  "fig13_kernel_amlight"
  "fig13_kernel_amlight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_kernel_amlight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
