# Empty dependencies file for table3_flow_control.
# This may be replaced when dependencies are built.
