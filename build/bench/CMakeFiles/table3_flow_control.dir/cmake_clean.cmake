file(REMOVE_RECURSE
  "CMakeFiles/table3_flow_control.dir/table3_flow_control.cpp.o"
  "CMakeFiles/table3_flow_control.dir/table3_flow_control.cpp.o.d"
  "table3_flow_control"
  "table3_flow_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_flow_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
