file(REMOVE_RECURSE
  "CMakeFiles/future_400g.dir/future_400g.cpp.o"
  "CMakeFiles/future_400g.dir/future_400g.cpp.o.d"
  "future_400g"
  "future_400g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_400g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
