# Empty compiler generated dependencies file for future_400g.
# This may be replaced when dependencies are built.
