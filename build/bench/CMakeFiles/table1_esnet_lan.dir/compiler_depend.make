# Empty compiler generated dependencies file for table1_esnet_lan.
# This may be replaced when dependencies are built.
