file(REMOVE_RECURSE
  "CMakeFiles/table1_esnet_lan.dir/table1_esnet_lan.cpp.o"
  "CMakeFiles/table1_esnet_lan.dir/table1_esnet_lan.cpp.o.d"
  "table1_esnet_lan"
  "table1_esnet_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_esnet_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
