// Example: quantify what a kernel upgrade buys a specific deployment.
//
// "Should we move our DTNs from Ubuntu 22.04 (5.15) to 24.04 (6.8)?" —
// this example answers with numbers for both single-flow benchmarking and
// the parallel-stream production profile, on both vendors' hosts.
//
//   $ ./kernel_upgrade_study
#include <cstdio>

#include "dtnsim/core/dtnsim.hpp"

using namespace dtnsim;

namespace {

void study(const char* title, bool esnet) {
  std::printf("=== %s ===\n\n", title);
  Table table({"Kernel", "1 stream LAN", "1 stream WAN", "8 streams paced WAN"});
  const char* wan = esnet ? "WAN 63ms" : "WAN 54ms";
  const double pace = esnet ? 15.0 : 9.0;
  for (const auto k : {kern::KernelVersion::V5_15, kern::KernelVersion::V6_5,
                       kern::KernelVersion::V6_8}) {
    const auto tb = esnet ? harness::esnet(k) : harness::amlight(k);
    const auto lan = Experiment(tb).duration(units::SimTime::from_seconds(20)).repeats(4).run();
    const auto one = Experiment(tb).path(wan).duration(units::SimTime::from_seconds(20)).repeats(4).run();
    const auto many = Experiment(tb)
                          .path(wan)
                          .streams(8)
                          .zerocopy()
                          .pacing(units::Rate::from_gbps(pace))
                          .duration(units::SimTime::from_seconds(20))
                          .repeats(4)
                          .run();
    table.add_row({kern::kernel_version_name(k), strfmt("%.1f Gbps", lan.avg_gbps),
                   strfmt("%.1f Gbps", one.avg_gbps),
                   strfmt("%.1f Gbps", many.avg_gbps)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
}

}  // namespace

int main() {
  study("AMD EPYC hosts (ESnet profile)", true);
  study("Intel Xeon hosts (AmLight profile)", false);

  std::printf("Reading: single-flow benchmarks gain the full kernel delta\n"
              "(~30%% AMD, ~27%% Intel LAN, per the paper); a well-paced parallel\n"
              "production profile is pinned by pacing/path, so the upgrade\n"
              "mostly buys CPU headroom there rather than throughput.\n\n");
  std::printf("Ubuntu 22.04 upgrade paths (paper §IV-E):\n"
              "  6.5: apt install linux-generic-hwe-22.04\n"
              "  6.8: apt install linux-image-generic-hwe-22.04-edge\n");
  return 0;
}
