// Quickstart: reproduce the paper's headline single-stream result.
//
// Runs four configurations of a single TCP stream on the AmLight testbed's
// 104 ms WAN path (kernel 6.8): default iperf3, zerocopy alone, zerocopy
// with 50 Gbps pacing, and BIG TCP — then prints the paper-style comparison.
//
//   $ ./quickstart
#include <cstdio>

#include "dtnsim/core/dtnsim.hpp"

int main() {
  using namespace dtnsim;

  const auto tb = harness::amlight(kern::KernelVersion::V6_8);

  struct Config {
    const char* label;
    bool zerocopy;
    double pace_gbps;
    bool big_tcp;
  };
  const Config configs[] = {
      {"default", false, 0.0, false},
      {"zerocopy", true, 0.0, false},
      {"zerocopy + pacing 50G", true, 50.0, false},
      {"BIG TCP (150K)", false, 0.0, true},
  };

  Table table({"Configuration", "Throughput", "stddev", "Retransmits", "Sender CPU"});
  for (const auto& c : configs) {
    auto result = Experiment(tb)
                      .path("WAN 104ms")
                      .zerocopy(c.zerocopy)
                      .pacing(units::Rate::from_gbps(c.pace_gbps))
                      .big_tcp(c.big_tcp)
                      .repeats(5)
                      .duration(units::SimTime::from_seconds(20))
                      .run();
    table.add_row({c.label, strfmt("%.1f Gbps", result.avg_gbps),
                   strfmt("%.1f", result.stdev_gbps),
                   strfmt("%.0f", result.avg_retransmits),
                   strfmt("%.0f%%", result.snd_cpu_pct)});
  }

  std::printf("Single stream, AmLight testbed, 104 ms WAN path, kernel 6.8\n\n%s\n",
              table.to_ascii().c_str());
  std::printf("Expected shape (paper Fig. 5): zerocopy alone does not help;\n"
              "zerocopy + pacing reaches the 50G pacing rate (~35%% over default);\n"
              "BIG TCP gives a smaller (<=16%%) improvement.\n");
  return 0;
}
