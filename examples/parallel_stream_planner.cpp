// Example: plan pacing for a production parallel-stream DTN.
//
// Globus/FTS-style movers run many flows in parallel; the operational
// question is what --fq-rate (or tc ceiling) to configure. This example
// sweeps flows x pacing over a flow-control-capable production path and
// prints the throughput / retransmit / fairness trade-off grid, then picks
// the configuration the paper's §V-B guidance would pick.
//
//   $ ./parallel_stream_planner
#include <cstdio>

#include "dtnsim/core/dtnsim.hpp"

using namespace dtnsim;

int main() {
  const auto tb = harness::esnet_production(kern::KernelVersion::V6_8);

  Table grid({"Flows", "Pace/flow", "Attempted", "Throughput", "Retr",
              "Per-flow range"});
  struct Best {
    double score = -1;
    int flows = 0;
    double pace = 0;
  } best;

  for (const int flows : {4, 8, 16}) {
    for (const double pace : {5.0, 10.0, 15.0, 25.0}) {
      const auto r = Experiment(tb)
                         .path("production 63ms")
                         .streams(flows)
                         .zerocopy()
                         .pacing(units::Rate::from_gbps(pace))
                         .duration(units::SimTime::from_seconds(30))
                         .repeats(5)
                         .run();
      grid.add_row({strfmt("%d", flows), strfmt("%.0fG", pace),
                    strfmt("%.0fG", flows * pace), strfmt("%.1f Gbps", r.avg_gbps),
                    strfmt("%.0f", r.avg_retransmits),
                    strfmt("%.1f-%.1f", r.flow_min_gbps, r.flow_max_gbps)});
      // Score: throughput, penalized by retransmits and unfairness.
      const double fairness = r.flow_max_gbps > 0 ? r.flow_min_gbps / r.flow_max_gbps : 0;
      const double score =
          r.avg_gbps * fairness / (1.0 + r.avg_retransmits / 5000.0);
      if (score > best.score) best = {score, flows, pace};
    }
    grid.add_separator();
  }
  std::printf("%s\n", grid.to_ascii().c_str());
  std::printf("Planner pick: %d flows paced at %.0f Gbps each "
              "(best throughput x fairness / retransmit trade-off).\n",
              best.flows, best.pace);
  std::printf("Paper guidance (§V-B): pace so flows do not interfere; with 802.3x\n"
              "flow control pacing mostly buys fairness and fewer retransmits.\n");
  return 0;
}
