// Example: audit a host configuration with the TuningAdvisor and measure
// what each recommendation is worth.
//
// Starts from a completely stock Ubuntu host on a 63 ms WAN path, applies
// the paper's recommendations one at a time, and shows the throughput
// ladder — the practical §V "how to tune a DTN" walkthrough.
//
//   $ ./dtn_tuning_advisor
#include <cstdio>

#include "dtnsim/core/dtnsim.hpp"

using namespace dtnsim;

namespace {

double measure(const harness::Testbed& tb, bool zerocopy, double pace_gbps) {
  auto e = Experiment(tb).path("WAN 63ms").duration(units::SimTime::from_seconds(30)).repeats(5);
  if (zerocopy) e.zerocopy();
  if (pace_gbps > 0) e.pacing(units::Rate::from_gbps(pace_gbps));
  return e.run().avg_gbps;
}

}  // namespace

int main() {
  // A stock host: default sysctls, irqbalance on, powersave governor,
  // 1500 MTU, strict IOMMU, fq_codel.
  auto tb = harness::esnet(kern::KernelVersion::V5_15);
  tb.sender.tuning = host::TuningConfig::stock();
  tb.receiver.tuning = host::TuningConfig::stock();

  std::printf("=== TuningAdvisor audit of the stock host ===\n\n%s\n",
              advise(tb.sender, tb.path_named("WAN 63ms"), UseCase::SingleFlowBenchmark,
                     tb.link_flow_control)
                  .to_string()
                  .c_str());

  Table ladder({"Step", "Applied change", "WAN 63ms throughput"});
  auto row = [&](const char* step, const char* change, double gbps) {
    ladder.add_row({step, change, strfmt("%.2f Gbps", gbps)});
  };

  row("0", "stock host, default iperf3", measure(tb, false, 0));

  for (auto* h : {&tb.sender, &tb.receiver}) {
    h->tuning.sysctl = kern::SysctlConfig::fasterdata_tuned();
  }
  row("1", "+ fasterdata sysctls (buffers, fq, optmem)", measure(tb, false, 0));

  for (auto* h : {&tb.sender, &tb.receiver}) h->tuning.mtu_bytes = 9000;
  row("2", "+ MTU 9000", measure(tb, false, 0));

  for (auto* h : {&tb.sender, &tb.receiver}) {
    h->tuning.irqbalance_disabled = true;
    h->tuning.performance_governor = true;
    h->tuning.smt_off = true;
  }
  row("3", "+ IRQ/app core pinning, performance governor, SMT off",
      measure(tb, false, 0));

  for (auto* h : {&tb.sender, &tb.receiver}) {
    h->tuning.iommu_passthrough = true;
    h->tuning.ring_descriptors = 8192;
  }
  row("4", "+ iommu=pt, rings 8192 (AMD)", measure(tb, false, 0));

  tb.sender.kernel = kern::kernel_profile(kern::KernelVersion::V6_8);
  tb.receiver.kernel = kern::kernel_profile(kern::KernelVersion::V6_8);
  row("5", "+ kernel 5.15 -> 6.8", measure(tb, false, 0));

  row("6", "+ MSG_ZEROCOPY + pacing 40G (patched iperf3)", measure(tb, true, 40));

  std::printf("=== Measured tuning ladder ===\n\n%s\n", ladder.to_ascii().c_str());

  std::printf("Advisor pacing suggestions (paper §V-B):\n");
  std::printf("  100G DTN feeding 10G clients : %.0f Gbps/flow\n",
              recommended_pacing(units::Rate::from_gbps(100), units::Rate::from_gbps(10)).gbps());
  std::printf("  100G DTN to 100G DTNs        : %.0f Gbps/flow\n",
              recommended_pacing(units::Rate::from_gbps(100), units::Rate::from_gbps(100)).gbps());
  return 0;
}
