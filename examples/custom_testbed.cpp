// Example: build a testbed from scratch with the low-level API.
//
// Everything the built-in AmLight/ESnet testbeds do can be composed by
// hand: pick CPUs, a kernel, a NIC, tunings, and a path, then drive the
// iperf3 tool model directly (including its JSON output).
//
//   $ ./custom_testbed
#include <cstdio>

#include "dtnsim/core/dtnsim.hpp"

using namespace dtnsim;

int main() {
  // A hypothetical campus DTN pair: single-socket AMD, ConnectX-7 at 200G,
  // Ubuntu 24.04 (kernel 6.8), tuned per fasterdata, 17 ms of RTT between
  // campus and a national lab.
  host::HostConfig dtn;
  dtn.name = "campus-dtn";
  dtn.cpu = cpu::amd_epyc_73f3();
  dtn.cpu.sockets = 1;
  dtn.cpu.numa_nodes = 1;
  dtn.kernel = kern::kernel_profile(kern::KernelVersion::V6_8);
  dtn.nic = net::connectx7_200g();
  dtn.tuning = host::TuningConfig::dtn_tuned();
  dtn.tuning.ring_descriptors = 8192;

  net::PathSpec path;
  path.name = "campus-lab 17ms";
  path.rtt = units::millis(17);
  path.capacity_bps = 100e9;  // the campus uplink
  path.hops = 6;
  path.bg_traffic_bps = 8e9;  // shared with campus traffic
  path.bg_burst_sigma = 0.4;
  path.burst_tolerance_bps = 70e9;

  // Drive the patched iperf3 model directly.
  app::IperfTool iperf;  // v3.17 + patches 1690/1728
  app::IperfOptions opts;
  opts.parallel = 4;
  opts.duration_sec = 30;
  opts.zerocopy = true;
  opts.fq_rate_bps = units::gbps(20);
  opts.json = true;

  const auto report = iperf.run(dtn, dtn, path, opts, /*flow_control=*/false, /*seed=*/7);
  std::printf("%s\n\n", report.summary_line().c_str());
  std::printf("Per-stream: ");
  for (double g : report.per_stream_gbps) std::printf("%.1f ", g);
  std::printf("Gbps\n\n");

  std::printf("--json output (first lines):\n");
  const std::string json = report.to_json(opts).dump(2);
  std::printf("%.*s\n...\n\n", 600, json.c_str());

  // And ask the advisor whether this host is ready for production use.
  std::printf("Advisor on this configuration:\n%s",
              advise(dtn, path, UseCase::ParallelStreamDtn, false).to_string().c_str());

  // What would the same transfer look like without the uplink bottleneck?
  net::PathSpec clean = path;
  clean.capacity_bps = 200e9;
  clean.bg_traffic_bps = 0;
  clean.burst_tolerance_bps = 150e9;
  const auto clean_report = iperf.run(dtn, dtn, clean, opts, false, 7);
  std::printf("\nSame hosts on a clean 200G path: %.1f Gbps (vs %.1f on the uplink)\n",
              clean_report.sum_received_gbps, report.sum_received_gbps);
  return 0;
}
